open Ftsim_sim
open Ftsim_hw

(* {1 Batching configuration} *)

type batch_config = {
  batch_records : int;
  batch_bytes : int;
  batch_window : Time.t;
  ack_every : int;
  ack_delay : Time.t;
}

let unbatched =
  {
    batch_records = 1;
    batch_bytes = Wire.max_frame_bytes;
    batch_window = Time.ns 0;
    ack_every = 32;
    ack_delay = Time.ns 0;
  }

let default_batch =
  {
    batch_records = 16;
    batch_bytes = 4 * Ftsim_netstack.Packet.mtu;
    batch_window = Time.us 20;
    ack_every = 32;
    ack_delay = Time.us 10;
  }

type primary = {
  p_eng : Engine.t;
  p_out : Wire.message Mailbox.chan;
  p_in : Wire.message Mailbox.chan;
  batch : batch_config;
  mutable next_lsn : int;
  mutable p_acked : int;
  (* Cumulative per-channel replay cursors reported by the secondary's
     acks: channel id -> sections consumed.  Observability only (the
     output-commit rule needs just [p_acked]). *)
  p_chan_acks : (int, int) Hashtbl.t;
  stable_waiters : Waitq.t;
  mutable disabled : bool;
  mutable p_last_peer : Time.t;
  (* Staged records not yet on the wire, oldest last ([buf] is reversed).
     [buf_bytes] is the frame size a flush would produce right now. *)
  mutable buf : Wire.record list;
  mutable buf_base : int;
  mutable buf_count : int;
  mutable buf_bytes : int;
  mutable buf_opened : Time.t;
  flush_wq : Waitq.t;
  flush_mu : Sync.Mutex.t;
  p_recs : Metrics.Counter.t;
  r_recs : Metrics.Counter.t;  (* registry twin of [p_recs] *)
  r_frames : Metrics.Counter.t;
  r_commit_flush : Metrics.Counter.t;
}

type secondary = {
  s_eng : Engine.t;
  s_in : Wire.message Mailbox.chan;
  s_out : Wire.message Mailbox.chan;
  s_batch : batch_config;
  replay_cost : Time.t;
  delta_cost : Time.t;
  handler : Wire.record -> unit;
  chan_progress : unit -> (int * int) list;
  mutable s_received : int;
  mutable s_last_acked : int;
  mutable s_last_peer : Time.t;
  mutable processing : bool;
  mutable ack_timer : Engine.handle option;
  r_replayed : Metrics.Counter.t;
}

let log = Trace.make "ft.msglayer"

(* {1 Primary} *)

let create_primary ?(batch = unbatched) eng ~out ~inb =
  {
    p_eng = eng;
    p_out = out;
    p_in = inb;
    batch;
    next_lsn = 0;
    p_acked = -1;
    p_chan_acks = Hashtbl.create 8;
    stable_waiters = Waitq.create ();
    disabled = false;
    p_last_peer = Engine.now eng;
    buf = [];
    buf_base = 0;
    buf_count = 0;
    buf_bytes = 0;
    buf_opened = Engine.now eng;
    flush_wq = Waitq.create ();
    flush_mu = Sync.Mutex.create ();
    p_recs = Metrics.Counter.create ();
    r_recs =
      Metrics.Registry.counter (Engine.metrics eng) "msglayer.records_appended";
    r_frames =
      Metrics.Registry.counter (Engine.metrics eng) "msglayer.frames_sent";
    r_commit_flush =
      Metrics.Registry.counter (Engine.metrics eng) "msglayer.commit_flushes";
  }

let record_kind = function
  | Wire.Sync_tuple _ -> "tuple"
  | Wire.Syscall_result _ -> "syscall"
  | Wire.Tcp_delta _ -> "tcp_delta"

let send_frame p msg =
  Metrics.Counter.incr p.r_frames;
  Mailbox.send p.p_out ~bytes:(Wire.message_bytes msg) msg

(* Detach the staged batch; the caller sends it.  Never suspends, so a
   take-then-send under [flush_mu] is atomic with respect to staging. *)
let take_batch p =
  if p.buf_count = 0 then None
  else begin
    let base = p.buf_base and n = p.buf_count in
    let records = List.rev p.buf in
    p.buf <- [];
    p.buf_count <- 0;
    p.buf_bytes <- 0;
    Some (base, n, records)
  end

(* Flush the staged batch as one frame.  [flush_mu] serializes emitters so
   frames reach the mailbox in LSN order even when the blocking send parks
   several of them; each takes whatever is staged once it holds the lock. *)
let flush ?(ack_now = false) p =
  if p.buf_count > 0 && not p.disabled then
    Sync.Mutex.with_lock p.flush_mu (fun () ->
        match take_batch p with
        | None -> ()
        | Some (base, n, records) ->
            Evlog.emit (Engine.evlog p.p_eng) ~comp:"ft.msglayer" "frame.flush"
              ~args:[ ("base_lsn", Evlog.Int base); ("count", Evlog.Int n) ];
            let msg =
              match records with
              | [ record ] -> Wire.Record { lsn = base; ack_now; record }
              | records -> Wire.Batch { base_lsn = base; ack_now; records }
            in
            send_frame p msg)

let append p record =
  if p.disabled then p.next_lsn
  else begin
    let lsn = p.next_lsn in
    p.next_lsn <- lsn + 1;
    Metrics.Counter.incr p.p_recs;
    Metrics.Counter.incr p.r_recs;
    Evlog.emit (Engine.evlog p.p_eng) ~comp:"ft.msglayer" "record.append"
      ~args:
        (("lsn", Evlog.Int lsn)
        :: ("kind", Evlog.Str (record_kind record))
        ::
        (match record with
        | Wire.Sync_tuple { chans = (c, _) :: _; _ } ->
            [ ("channel", Evlog.Int c) ]
        | _ -> []));
    if p.batch.batch_records <= 1 then
      (* Unbatched: one frame per record, blocking on a full ring (the
         backpressure throttle). *)
      send_frame p (Wire.Record { lsn; ack_now = false; record })
    else begin
      let sub = Wire.batched_record_bytes record in
      (* Never let the staged frame outgrow the wire format. *)
      if p.buf_count > 0 && p.buf_bytes + sub > Wire.max_frame_bytes then
        flush p;
      if Wire.header + 4 + sub > Wire.max_frame_bytes then
        (* A record too large to batch at all travels standalone. *)
        send_frame p (Wire.Record { lsn; ack_now = false; record })
      else begin
        if p.buf_count = 0 then begin
          p.buf_base <- lsn;
          p.buf_bytes <- Wire.header + 4;
          p.buf_opened <- Engine.now p.p_eng;
          (* First staged record opens the window: wake the flusher. *)
          ignore (Waitq.wake_all p.flush_wq)
        end;
        p.buf <- record :: p.buf;
        p.buf_count <- p.buf_count + 1;
        p.buf_bytes <- p.buf_bytes + sub;
        if
          p.buf_count >= p.batch.batch_records
          || p.buf_bytes >= p.batch.batch_bytes
        then flush p
      end
    end;
    lsn
  end

let last_lsn p = p.next_lsn - 1
let acked p = p.p_acked

let chan_acked p ~chan =
  Option.value ~default:0 (Hashtbl.find_opt p.p_chan_acks chan)

(* Flush-on-output-commit: before parking for stability of [lsn], make sure
   every staged record covering it is actually on the wire — otherwise the
   commit would wait for an ack the secondary can never send.  The flush
   carries [ack_now] (the PSH/quickack analogue) so the secondary replies
   immediately instead of sitting out its delayed-ack timer; if the
   covering records already left in an ack-later frame, an empty [ack_now]
   batch goes out as a pure ack request. *)
let flush_for ~lsn p =
  if not p.disabled then begin
    if p.buf_count > 0 && p.buf_base <= lsn then begin
      Metrics.Counter.incr p.r_commit_flush;
      flush ~ack_now:true p
    end
    else if p.batch.ack_delay > 0 && p.p_acked < lsn && lsn < p.next_lsn then begin
      let poke =
        Wire.Batch { base_lsn = p.next_lsn; ack_now = true; records = [] }
      in
      (* try_send: if the ring is full the secondary is busy replaying and
         will ack through the ack_every path anyway. *)
      ignore (Mailbox.try_send p.p_out ~bytes:(Wire.message_bytes poke) poke)
    end
  end

let wait_stable p ~lsn =
  flush_for ~lsn p;
  let rec wait () =
    if p.disabled || p.p_acked >= lsn then ()
    else begin
      ignore (Sync.wait_on p.stable_waiters);
      wait ()
    end
  in
  wait ()

let disable p =
  if not p.disabled then begin
    p.disabled <- true;
    (* Staged records die with the primary; they never reached the wire and
       nothing was committed against them. *)
    p.buf <- [];
    p.buf_count <- 0;
    p.buf_bytes <- 0;
    Trace.warnf log ~eng:p.p_eng "replication disabled (secondary presumed dead)";
    ignore (Waitq.wake_all p.stable_waiters);
    ignore (Waitq.wake_all p.flush_wq)
  end

let is_disabled p = p.disabled

let send_heartbeat_p p ~seq =
  let msg = Wire.Heartbeat { from_primary = true; seq } in
  ignore (Mailbox.try_send p.p_out ~bytes:(Wire.message_bytes msg) msg)

let last_peer_activity_p p = p.p_last_peer

let spawn_primary_rx p spawn =
  ignore
    (spawn "ft-ml-prx" (fun () ->
         let rec loop () =
           let msg = Mailbox.recv p.p_in in
           p.p_last_peer <- Engine.now p.p_eng;
           (match msg with
           | Wire.Ack { upto; chans } ->
               List.iter
                 (fun (ch, consumed) ->
                   if consumed > chan_acked p ~chan:ch then
                     Hashtbl.replace p.p_chan_acks ch consumed)
                 chans;
               if upto > p.p_acked then begin
                 p.p_acked <- upto;
                 Evlog.emit (Engine.evlog p.p_eng) ~comp:"ft.msglayer"
                   "record.acked"
                   ~args:
                     [
                       ("upto", Evlog.Int upto);
                       ("chans", Evlog.Int (List.length chans));
                     ];
                 ignore (Waitq.wake_all p.stable_waiters)
               end
           | Wire.Heartbeat _ -> ()
           | Wire.Record _ | Wire.Batch _ ->
               Trace.errorf log ~eng:p.p_eng "unexpected record on ack channel");
           loop ()
         in
         loop ()));
  (* The window flusher: parks while nothing is staged, otherwise flushes
     once the oldest staged record has waited [batch_window].  Spawned with
     the partition-bound spawner so it dies with the primary — taking any
     staged-but-unsent records with it, which is exactly the crash
     semantics the output-commit rule assumes. *)
  if p.batch.batch_records > 1 then
    ignore
      (spawn "ft-ml-flush" (fun () ->
           let rec loop () =
             if p.disabled then ()
             else if p.buf_count = 0 then begin
               ignore (Sync.wait_on p.flush_wq);
               loop ()
             end
             else begin
               let deadline = p.buf_opened + p.batch.batch_window in
               if Engine.now p.p_eng >= deadline then begin
                 flush p;
                 loop ()
               end
               else begin
                 Engine.sleep_until deadline;
                 loop ()
               end
             end
           in
           loop ()))

(* {1 Secondary} *)

let create_secondary ?(batch = unbatched) ?(chan_progress = fun () -> []) eng
    ~inb ~out ~replay_cost ~delta_cost ~handler =
  {
    s_eng = eng;
    s_in = inb;
    s_out = out;
    s_batch = batch;
    replay_cost;
    delta_cost;
    handler;
    chan_progress;
    s_received = -1;
    s_last_acked = -1;
    s_last_peer = Engine.now eng;
    processing = false;
    ack_timer = None;
    r_replayed =
      Metrics.Registry.counter (Engine.metrics eng) "msglayer.records_replayed";
  }

let cancel_ack_timer s =
  match s.ack_timer with
  | None -> ()
  | Some h ->
      s.ack_timer <- None;
      Engine.cancel h

let send_ack s =
  if s.s_received > s.s_last_acked then begin
    (* Per-channel replay cursors ride the ack.  The dirty marks are
       drained here; if the try_send below fails, the cursors travel with
       the next ack a further consume triggers — acceptable for an
       observability-only signal, and the [upto] cursor stays exact. *)
    let msg = Wire.Ack { upto = s.s_received; chans = s.chan_progress () } in
    (* Cumulative: a skipped ack (full ring, dead primary) is subsumed by
       the next one. *)
    if
      (not (Mailbox.src_halted s.s_out))
      && Mailbox.try_send s.s_out ~bytes:(Wire.message_bytes msg) msg
    then begin
      s.s_last_acked <- s.s_received;
      cancel_ack_timer s;
      let ev = Engine.evlog s.s_eng in
      Evlog.emit ev ~comp:"ft.msglayer" "record.ack"
        ~args:[ ("upto", Evlog.Int s.s_received) ];
      Evlog.counter ev ~comp:"ft.msglayer" "acked_lsn"
        (float_of_int s.s_received)
    end
  end

(* Delayed-ack coalescing, the shape of the TCP stack's: instead of acking
   the moment the queue runs dry, arm a short timer; acks for everything
   replayed meanwhile ride one cumulative frame.  [send_ack] is try_send
   based, so firing in raw timer context is safe. *)
let arm_delayed_ack s =
  if s.s_received > s.s_last_acked then
    match s.ack_timer with
    | Some h when Engine.timer_armed h -> ()
    | _ ->
        let at = Engine.now s.s_eng + s.s_batch.ack_delay in
        s.ack_timer <- Some (Engine.timer s.s_eng ~at (fun () -> send_ack s))

let replay_one s ~lsn record =
  let sp =
    Evlog.span_begin (Engine.evlog s.s_eng) ~comp:"ft.msglayer" "replay"
      ~args:[ ("lsn", Evlog.Int lsn) ]
  in
  (* Records that wake a replaying thread pay the wake_up_process()
     latency — the serial bottleneck the paper identifies (§4.1); TCP
     deltas are absorbed in this context at memcpy-ish cost. *)
  Engine.sleep
    (if Wire.wakes_thread record then s.replay_cost else s.delta_cost);
  s.handler record;
  s.s_received <- max s.s_received lsn;
  Metrics.Counter.incr s.r_replayed;
  Evlog.span_end (Engine.evlog s.s_eng) sp

(* Returns how many records the message carried. *)
let handle s msg =
  s.s_last_peer <- Engine.now s.s_eng;
  match msg with
  | Wire.Record { lsn; record; _ } ->
      s.processing <- true;
      replay_one s ~lsn record;
      s.processing <- false;
      1
  | Wire.Batch { base_lsn; records; _ } ->
      (* A batch is one mailbox message: it survives a primary crash whole
         or not at all, and [processing] covers its full replay so a
         failover cannot observe a half-applied frame. *)
      s.processing <- true;
      let sp =
        Evlog.span_begin (Engine.evlog s.s_eng) ~comp:"ft.msglayer"
          "replay.batch"
          ~args:
            [
              ("base_lsn", Evlog.Int base_lsn);
              ("count", Evlog.Int (List.length records));
            ]
      in
      List.iteri (fun i record -> replay_one s ~lsn:(base_lsn + i) record) records;
      Evlog.span_end (Engine.evlog s.s_eng) sp;
      s.processing <- false;
      List.length records
  | Wire.Heartbeat _ -> 0
  | Wire.Ack _ ->
      Trace.errorf log ~eng:s.s_eng "unexpected ack on record channel";
      0

(* The primary's explicit ack request (PSH analogue): answer right away. *)
let wants_ack_now = function
  | Wire.Record { ack_now; _ } | Wire.Batch { ack_now; _ } -> ack_now
  | Wire.Ack _ | Wire.Heartbeat _ -> false

let spawn_secondary_rx s spawn =
  ignore
    (spawn "ft-ml-srx" (fun () ->
         let rec loop since_ack =
           (* Drain what is immediately available, then ack once. *)
           match Mailbox.poll s.s_in with
           | Some msg ->
               let since_ack = since_ack + handle s msg in
               if wants_ack_now msg || since_ack >= s.s_batch.ack_every then begin
                 send_ack s;
                 loop 0
               end
               else loop since_ack
           | None ->
               if s.s_batch.ack_delay <= 0 then send_ack s
               else arm_delayed_ack s;
               let msg = Mailbox.recv s.s_in in
               let n = handle s msg in
               if wants_ack_now msg then begin
                 send_ack s;
                 loop 0
               end
               else loop n
         in
         loop 0))

let received_lsn s = s.s_received

let send_heartbeat_s s ~seq =
  if not (Mailbox.src_halted s.s_out) then begin
    let msg = Wire.Heartbeat { from_primary = false; seq } in
    ignore (Mailbox.try_send s.s_out ~bytes:(Wire.message_bytes msg) msg)
  end

let last_peer_activity_s s = s.s_last_peer

let drained s =
  Mailbox.src_halted s.s_in && Mailbox.in_flight s.s_in = 0 && not s.processing

(* {1 Metrics} *)

let p_records p = Metrics.Counter.value p.p_recs
let p_frames p = Metrics.Counter.value p.r_frames

let traffic_msgs p s = Mailbox.msgs_sent p.p_out + Mailbox.msgs_sent s.s_out

let traffic_bytes p s = Mailbox.bytes_sent p.p_out + Mailbox.bytes_sent s.s_out

let reset_traffic p s =
  Mailbox.reset_metrics p.p_out;
  Mailbox.reset_metrics s.s_out

(* {1 Sinks} *)

type sink = {
  sink_append : Wire.record -> int;
  sink_last_lsn : unit -> int;
  sink_wait_stable : lsn:int -> unit;
  sink_flush : unit -> unit;
}

let sink_of_primary p =
  {
    sink_append = (fun r -> append p r);
    sink_last_lsn = (fun () -> last_lsn p);
    sink_wait_stable = (fun ~lsn -> wait_stable p ~lsn);
    sink_flush = (fun () -> flush p);
  }

type group = { members : primary array; mutable quorum : int }

let create_group members ~quorum =
  let n = List.length members in
  if n = 0 then invalid_arg "Msglayer.create_group: no members";
  if quorum < 1 || quorum > n then invalid_arg "Msglayer.create_group: quorum";
  List.iter
    (fun p -> if p.next_lsn <> 0 then invalid_arg "Msglayer.create_group: dirty log")
    members;
  { members = Array.of_list members; quorum }

let group_members g = Array.to_list g.members

let group_append g record =
  (* Identical LSN on every live member: appends stay paired because every
     record goes to all members (disabled ones no-op but keep counting). *)
  let lsn = ref (-1) in
  Array.iter
    (fun p ->
      let l =
        if p.disabled then begin
          (* Keep the LSN space aligned even for dead members. *)
          let l = p.next_lsn in
          p.next_lsn <- l + 1;
          l
        end
        else append p record
      in
      if !lsn = -1 then lsn := l
      else if l <> !lsn then failwith "Msglayer.group: LSN skew across members")
    g.members;
  !lsn

let group_acked_count g lsn =
  Array.fold_left
    (fun acc p -> if (not p.disabled) && p.p_acked >= lsn then acc + 1 else acc)
    0 g.members

let group_live_count g =
  Array.fold_left (fun acc p -> if p.disabled then acc else acc + 1) 0 g.members

let group_wait_stable g ~lsn =
  (* Flush every member first (flush-on-output-commit), then park.  Quorum
     shrinks with disabled members; with none left, stability is vacuous
     (solo mode).  Progress can come from any member, so park with a
     fire-once waker registered on every member's waiter queue
     (wait-for-any, as in Tcp.poll). *)
  Array.iter (flush_for ~lsn) g.members;
  let rec wait () =
    let live = group_live_count g in
    let need = min g.quorum live in
    if need = 0 || group_acked_count g lsn >= need then ()
    else begin
      Engine.suspend (fun _p resume ->
          let fired = ref false in
          let fire () =
            if not !fired then begin
              fired := true;
              resume ()
            end
          in
          Array.iter
            (fun p -> ignore (Waitq.add p.stable_waiters fire))
            g.members);
      wait ()
    end
  in
  wait ()

let group_disable g i =
  if i < 0 || i >= Array.length g.members then invalid_arg "group_disable";
  let p = g.members.(i) in
  if not p.disabled then begin
    disable p;
    (* Wake stability waiters parked on any member: quorum may now be met
       (or vacuous). *)
    Array.iter (fun m -> ignore (Waitq.wake_all m.stable_waiters)) g.members
  end

let sink_of_group g =
  {
    sink_append = (fun r -> group_append g r);
    sink_last_lsn =
      (fun () ->
        Array.fold_left (fun acc p -> max acc (last_lsn p)) (-1) g.members);
    sink_wait_stable = (fun ~lsn -> group_wait_stable g ~lsn);
    sink_flush = (fun () -> Array.iter flush g.members);
  }
