(** Heart-beat failure detection (§3.6).

    Each replica periodically sends a heart-beat over the mailbox; a replica
    that observes no peer activity for the timeout declares the peer failed
    (the caller then IPI-halts the suspect so a merely-slow replica cannot
    act as a rogue). *)

open Ftsim_sim

type t

val start :
  ?name:string ->
  spawn:(string -> (unit -> unit) -> Engine.proc) ->
  eng:Engine.t ->
  period:Time.t ->
  timeout:Time.t ->
  send:(seq:int -> unit) ->
  last_peer:(unit -> Time.t) ->
  on_failure:(unit -> unit) ->
  unit ->
  t
(** Arm the sender and monitor on cancellable engine timers.  [on_failure]
    fires at most once, in a fresh process spawned via [spawn] (failover
    blocks, so it needs process context); both timers then stop.  A send
    attempt on a halted partition silently stops the detector — the timer
    outlives the partition where the old sender thread died with it.

    [?name] labels this detector's trace events (component
    ["ft.heartbeat"]): per-period ["send"] instants when {!Evlog.detail} is
    on, and a pinned ["failure_detected"] instant when the monitor fires. *)

val stop : t -> unit
(** Silence the detector and cancel both timers eagerly (e.g. at shutdown,
    so the event queue drains immediately rather than at the next period). *)

val fired : t -> bool
