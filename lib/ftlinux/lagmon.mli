(** Replication-health monitor.

    Periodically samples the primary's append LSN against the backup's ack
    watermark (overall and per {!Det} channel), the backup's replay queue
    depth, and the append-to-ack round-trip probe, publishing:

    - gauges [<name>.lsn] (append−ack gap in records), [<name>.ack],
      [<name>.queue_depth], [<name>.rtt] (ns), and per-channel cursors
      [<name>.chan<c>.emitted] / [<name>.chan<c>.acked];
    - a [<name>.lsn_hist] histogram of the sampled gap;
    - channel-tagged Evlog counters under component ["ft.lagmon"] (unless
      [quiet]);
    - a health verdict: [Ok] / [Lagging] (gap at/above [lag_records] but
      moving) / [Stalled] (open gap with no watermark progress for
      [stall_after]).

    Sampling runs as a raw {!Engine.timer} callback: pure reads plus
    metric updates, never suspending and never touching Det or namespace
    state — so enabling the monitor cannot perturb the deterministic
    replay order, and with [quiet] set same-seed traces stay byte-identical
    to monitor-off runs.  The timer stops re-arming once [alive] reports
    false (peer declared dead, failover underway), so a quiesced engine
    can drain. *)

open Ftsim_sim

type t

type verdict = Ok | Retired | Lagging | Stalled
(** [Retired]: the monitored pair was replaced by a {e planned} epoch
    switch (live re-protection) — a terminal administrative verdict, not a
    health event. *)

val verdict_label : verdict -> string
val worse : verdict -> verdict -> verdict
(** The more severe of the two
    ([Stalled] > [Lagging] > [Retired] > [Ok]). *)

type config = {
  period : Time.t;  (** sampling interval *)
  lag_records : int;  (** [Lagging] at/above this append−ack gap *)
  stall_after : Time.t;
      (** [Stalled] when an open gap sees no watermark progress for this
          long.  Keep it well above the heartbeat timeout so peer death is
          detected (and [alive] goes false) before a stall can be called. *)
  quiet : bool;
      (** suppress Evlog emission; gauges/histograms still update *)
}

val default_config : config
(** 10 ms period, 64-record lag threshold, 150 ms stall window, not
    quiet. *)

type source = {
  appended : unit -> int;  (** primary: highest assigned LSN *)
  acked : unit -> int;  (** primary: highest acked LSN *)
  replayed : unit -> int;  (** backup: contiguous replay watermark *)
  queue_depth : unit -> int;  (** backup: replay backlog *)
  rtt : unit -> Time.t option;  (** primary: last append-to-ack RTT *)
  channels : unit -> (int * int * int) list;
      (** per-channel [(channel, sections emitted, sections acked)] *)
  alive : unit -> bool;
      (** false once replication legitimately ended — the monitor freezes
          (and stops re-arming) instead of reporting a death being handled
          elsewhere as a stall *)
}

val start :
  ?config:config ->
  ?regenerating:(unit -> bool) ->
  Engine.t ->
  name:string ->
  source ->
  t
(** Start sampling.  [name] prefixes every published metric ("lag" for a
    classic pair; "lag.b0"/"lag.b1" per backup in a group; "lag.e<n>" per
    re-protection epoch).  While [regenerating] (default: never) reports
    true, the stall timer is held back: a regeneration catch-up gap may be
    [Lagging] but is never called [Stalled]. *)

val stop : t -> unit
(** Cancel the sampling timer.  Idempotent. *)

val retire : t -> unit
(** A planned epoch switch replaced the monitored pair: record a terminal
    [Retired] verdict (with a transition) and stop sampling, instead of
    leaving the monitor frozen at whatever it last observed.  [worst] is
    untouched — retirement is not a health event.  Idempotent. *)

val verdict : t -> verdict
(** Current verdict (frozen at its last value once [alive] goes false;
    [Retired] after {!retire}). *)

val worst : t -> verdict
(** Most severe verdict observed over the monitor's lifetime. *)

val samples : t -> int

val transitions : t -> (Time.t * verdict) list
(** Verdict changes in time order (the initial [Ok] is implicit). *)
