open Ftsim_sim
open Ftsim_hw

(* Ballots are globally unique: round * n + node_id. *)
type ballot = int

type 'v msg =
  | Prepare of { instance : int; b : ballot }
  | Promise of { instance : int; b : ballot; accepted : (ballot * 'v) option }
  | Nack of { instance : int; b : ballot }
  | Accept of { instance : int; b : ballot; v : 'v }
  | Accepted of { instance : int; b : ballot }
  | Learn of { instance : int; v : 'v }

type 'v envelope = { from : int; payload : 'v msg }

type 'v slot = {
  mutable promised : ballot;  (* highest Prepare promised; -1 = none *)
  mutable accepted : (ballot * 'v) option;
  mutable learned : 'v option;
  learned_waiters : Waitq.t;
  (* proposer bookkeeping for the in-flight ballot *)
  mutable my_ballot : ballot;
  mutable promises : (int * (ballot * 'v) option) list;
  mutable accepts : int list;
  mutable proposing : 'v option;
  mutable phase2 : bool;  (* Accept broadcast for my_ballot already sent *)
}

type 'v node = {
  id : int;
  part : Partition.t;
  inbox : 'v envelope Bqueue.t;
  outs : (int * 'v msg Mailbox.chan) list;  (* peer id -> channel *)
  slots : (int, 'v slot) Hashtbl.t;
  prng : Prng.t;
}

type 'v t = {
  eng : Engine.t;
  n : int;
  members : 'v node array;
  value_bytes : 'v -> int;
  sent : Metrics.Counter.t;
}

let log = Trace.make "ft.paxos"

let nodes t = t.n
let majority t = (t.n / 2) + 1
let messages_sent t = Metrics.Counter.value t.sent

let slot_of node instance =
  match Hashtbl.find_opt node.slots instance with
  | Some s -> s
  | None ->
      let s =
        {
          promised = -1;
          accepted = None;
          learned = None;
          learned_waiters = Waitq.create ();
          my_ballot = -1;
          promises = [];
          accepts = [];
          proposing = None;
          phase2 = false;
        }
      in
      Hashtbl.replace node.slots instance s;
      s

let msg_bytes t = function
  | Prepare _ | Nack _ | Accepted _ -> 24
  | Promise { accepted; _ } ->
      24 + (match accepted with Some (_, v) -> 8 + t.value_bytes v | None -> 1)
  | Accept { v; _ } | Learn { v; _ } -> 24 + t.value_bytes v

let send t node ~to_ payload =
  if to_ = node.id then Bqueue.put node.inbox { from = node.id; payload }
  else
    match List.assoc_opt to_ node.outs with
    | Some ch ->
        if not (Mailbox.src_halted ch) then begin
          Metrics.Counter.incr t.sent;
          (* Consensus control messages are small and must not deadlock the
             node loop; drop on a full ring and rely on retry. *)
          ignore (Mailbox.try_send ch ~bytes:(msg_bytes t payload) payload)
        end
    | None -> ()

let broadcast t node payload =
  for peer = 0 to t.n - 1 do
    send t node ~to_:peer payload
  done

let learn t node instance v =
  let s = slot_of node instance in
  if s.learned = None then begin
    s.learned <- Some v;
    Trace.debugf log ~eng:t.eng "node %d learned instance %d" node.id instance;
    ignore (Waitq.wake_all s.learned_waiters)
  end

(* {1 Acceptor + learner + proposer-progress handling} *)

let handle t node { from; payload } =
  match payload with
  | Prepare { instance; b } ->
      let s = slot_of node instance in
      if b > s.promised then begin
        s.promised <- b;
        send t node ~to_:from (Promise { instance; b; accepted = s.accepted })
      end
      else send t node ~to_:from (Nack { instance; b })
  | Accept { instance; b; v } ->
      let s = slot_of node instance in
      if b >= s.promised then begin
        s.promised <- b;
        s.accepted <- Some (b, v);
        send t node ~to_:from (Accepted { instance; b })
      end
      else send t node ~to_:from (Nack { instance; b })
  | Promise { instance; b; accepted } ->
      let s = slot_of node instance in
      if b = s.my_ballot && s.learned = None && not s.phase2 then begin
        if not (List.mem_assoc from s.promises) then
          s.promises <- (from, accepted) :: s.promises;
        if List.length s.promises >= majority t then begin
          (* Phase 2: adopt the highest previously accepted value. *)
          let v =
            List.fold_left
              (fun best (_, acc) ->
                match (best, acc) with
                | None, Some (ab, av) -> Some (ab, av)
                | Some (bb, _), Some (ab, av) when ab > bb -> Some (ab, av)
                | best, _ -> best)
              None s.promises
          in
          let v =
            match (v, s.proposing) with
            | Some (_, av), _ -> av
            | None, Some own -> own
            | None, None -> assert false
          in
          s.proposing <- Some v;
          s.accepts <- [];
          s.phase2 <- true;
          broadcast t node (Accept { instance; b; v })
        end
      end
  | Accepted { instance; b } ->
      let s = slot_of node instance in
      if b = s.my_ballot && s.learned = None then begin
        if not (List.mem from s.accepts) then s.accepts <- from :: s.accepts;
        if List.length s.accepts >= majority t then begin
          match s.proposing with
          | Some v ->
              learn t node instance v;
              broadcast t node (Learn { instance; v })
          | None -> ()
        end
      end
  | Nack { instance = _; b = _ } ->
      (* Our ballot lost a race; the retry driver escalates with a higher
         one on its next backoff expiry. *)
      ()
  | Learn { instance; v } -> learn t node instance v

let start_round t node instance =
  let s = slot_of node instance in
  if s.learned = None then begin
    let round = (max s.my_ballot s.promised / t.n) + 1 in
    let b = (round * t.n) + node.id in
    s.my_ballot <- b;
    s.promises <- [];
    s.accepts <- [];
    s.phase2 <- false;
    broadcast t node (Prepare { instance; b })
  end

(* Retry driver: re-propose with escalating ballots and randomized backoff
   until the instance is learned.  The backoff is an election timer parked
   on [learned_waiters]: learning the instance wakes (and thereby cancels)
   it immediately instead of letting a dead timer ride out its backoff. *)
let retry_driver t node instance =
  let s = slot_of node instance in
  let rec loop backoff_us =
    if s.learned = None && not (Partition.is_halted node.part) then begin
      let deadline =
        Engine.now t.eng + Time.us (backoff_us + Prng.int node.prng backoff_us)
      in
      match Sync.wait_on ~deadline s.learned_waiters with
      | `Woken -> ()
      | `Timeout ->
          if s.learned = None then begin
            start_round t node instance;
            loop (min 12_800 (backoff_us * 2))
          end
    end
  in
  loop 100

let create eng ~partitions ?mailbox_config ?(value_bytes = fun _ -> 8) () =
  let n = List.length partitions in
  if n < 2 then invalid_arg "Paxos.create: need at least 2 partitions";
  let parts = Array.of_list partitions in
  let sent = Metrics.Counter.create () in
  (* Full mesh of unidirectional channels. *)
  let chans = Hashtbl.create (n * n) in
  Array.iteri
    (fun i pi ->
      Array.iteri
        (fun j pj ->
          if i <> j then
            Hashtbl.replace chans (i, j)
              (Mailbox.create eng ?config:mailbox_config ~src:pi ~dst:pj ()))
        parts)
    parts;
  let members =
    Array.mapi
      (fun i part ->
        let outs =
          List.init n Fun.id
          |> List.filter_map (fun j ->
                 if j = i then None else Some (j, Hashtbl.find chans (i, j)))
        in
        {
          id = i;
          part;
          inbox = Bqueue.create ();
          outs;
          slots = Hashtbl.create 16;
          prng = Prng.split (Engine.prng eng);
        })
      parts
  in
  let t = { eng; n; members; value_bytes; sent } in
  (* Per node: one forwarder per incoming channel plus the handler loop. *)
  Array.iter
    (fun node ->
      List.iter
        (fun (peer, _) ->
          let ch = Hashtbl.find chans (peer, node.id) in
          ignore
            (Partition.spawn node.part
               ~proc_name:(Printf.sprintf "paxos-fwd-%d<-%d" node.id peer)
               (fun () ->
                 let rec loop () =
                   let payload = Mailbox.recv ch in
                   Bqueue.put node.inbox { from = peer; payload };
                   loop ()
                 in
                 loop ())))
        node.outs;
      ignore
        (Partition.spawn node.part
           ~proc_name:(Printf.sprintf "paxos-node-%d" node.id)
           (fun () ->
             let rec loop () =
               let env = Bqueue.get node.inbox in
               (* Message-handling cost: a shared-memory CAS-and-scan. *)
               Engine.sleep (Time.ns 300);
               handle t node env;
               loop ()
             in
             loop ())))
    members;
  t

let propose t ~node ~instance v =
  let nd = t.members.(node) in
  Partition.check_alive nd.part;
  let s = slot_of nd instance in
  if s.proposing = None then s.proposing <- Some v;
  ignore
    (Partition.spawn nd.part
       ~proc_name:(Printf.sprintf "paxos-retry-%d-%d" node instance)
       (fun () ->
         start_round t nd instance;
         retry_driver t nd instance))

let chosen t ~node ~instance = (slot_of t.members.(node) instance).learned

let wait_chosen t ~node ~instance =
  let s = slot_of t.members.(node) instance in
  let rec wait () =
    match s.learned with
    | Some v -> v
    | None ->
        ignore (Sync.wait_on s.learned_waiters);
        wait ()
  in
  wait ()

let chosen_prefix t ~node =
  let rec walk acc i =
    match chosen t ~node ~instance:i with
    | Some v -> walk (v :: acc) (i + 1)
    | None -> List.rev acc
  in
  walk [] 0
