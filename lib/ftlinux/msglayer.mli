(** The replication log: an LSN-stamped FIFO of {!Wire.record}s from primary
    to secondary over the shared-memory mailbox, with cumulative
    acknowledgements flowing back.

    Three behaviours of the evaluation live here:

    - {b backpressure}: [append] blocks when the mailbox ring is full, so a
      primary that outruns the secondary's replay slows to its pace — the
      paper's sustained-throughput ceiling;
    - {b replay delivery cost}: the secondary charges a
      [wake_up_process]-style latency per record delivered, serializing
      replay — the paper's identified bottleneck (§4.1);
    - {b stability}: [wait_stable] blocks until the secondary acknowledged a
      given LSN — the primitive underneath output commit (§3.5). *)

open Ftsim_sim
open Ftsim_hw

type primary
type secondary

(** {1 Batching}

    The hot path streams one record per deterministic-section boundary;
    batching coalesces records staged within a window — bounded by count,
    bytes, and simulated time — into one {!Wire.Batch} frame, and the
    secondary's cumulative acks get TCP-style delayed-ack coalescing.
    [unbatched] reproduces the original one-frame-per-record behaviour. *)

type batch_config = {
  batch_records : int;
      (** flush after this many staged records; [<= 1] disables batching *)
  batch_bytes : int;  (** flush when the staged frame would reach this size *)
  batch_window : Time.t;
      (** flush at latest this long after the oldest staged record *)
  ack_every : int;  (** secondary: ack after this many replayed records *)
  ack_delay : Time.t;
      (** secondary: on queue idle, delay the ack this long so acks for
          back-to-back frames coalesce; [0] acks immediately *)
}

val unbatched : batch_config
val default_batch : batch_config
(** 16 records / 4×MTU bytes / 20 µs window; acks every 32 records or
    after a 10 µs delayed-ack timer. *)

val create_primary :
  ?batch:batch_config ->
  ?journal:(int -> Wire.record -> unit) ->
  ?base_lsn:int ->
  Engine.t ->
  out:Wire.message Mailbox.chan ->
  inb:Wire.message Mailbox.chan ->
  primary
(** [batch] defaults to {!unbatched}.  {!Cluster.default_config} turns
    {!default_batch} on.  [journal] (default: none) is invoked per appended
    record at LSN assignment, before the send can block — live
    re-protection spools the primary's authoritative timeline here (the
    regeneration source after a {e backup} death, when every appended
    record was executed by the survivor).  [base_lsn] (default 0) is the
    first LSN this log will assign — an epoch switch continues the
    cluster's global LSN space on a fresh mailbox pair instead of
    restarting from zero. *)

val spawn_primary_rx : primary -> (string -> (unit -> unit) -> Engine.proc) -> unit
(** Start the ack/heartbeat receive loop — and, when batching is on, the
    window flusher — with a partition-bound spawner, so both die with
    their partition (staged-but-unsent records die with the primary). *)

val append : primary -> Wire.record -> int
(** Stamp and count a record; returns its LSN.  Unbatched, the record is
    sent immediately (blocking while the mailbox ring is full — the
    backpressure throttle); batched, it is staged and the frame goes out
    when the count/byte threshold trips, the window expires, or a
    stability wait forces it. *)

val flush : ?ack_now:bool -> primary -> unit
(** Send the staged batch now (no-op when empty or disabled).  [ack_now]
    marks the frame as an explicit ack request (see {!Wire.message}) —
    the commit path sets it; plain window/threshold flushes do not. *)

val last_lsn : primary -> int
(** Highest assigned LSN, staged records included. *)

val acked : primary -> int

val chan_acked : primary -> chan:int -> int
(** Cumulative replay cursor the secondary last reported for a channel
    (sections consumed); 0 if it never reported.  Observability only — the
    output-commit rule uses {!acked}. *)

val last_rtt : primary -> Time.t option
(** Append-to-ack round-trip of the most recently resolved probe: one
    probe is armed on the highest LSN of an outgoing frame and resolved by
    the first ack covering it (also recorded in the ["lag.rtt_ns"] registry
    histogram).  [None] until the first ack.  Observability only. *)

val wait_stable : primary -> lsn:int -> unit
(** Block until [acked >= lsn] (returns immediately when replication is
    disabled or the LSN is already stable).  Flushes any staged records
    covering [lsn] first — flush-on-output-commit: a commit never waits on
    an ack for a record that has not been sent. *)

val disable : primary -> unit
(** Secondary declared dead: appends become no-ops, every stability waiter
    is released, and future waits return immediately. *)

val is_disabled : primary -> bool

val send_heartbeat_p : primary -> seq:int -> unit

val last_peer_activity_p : primary -> Time.t

(** {1 Sinks: what recording components write to}

    The deterministic-section engine and the namespace gates only need
    append/stability; a [sink] abstracts whether one backup (classic
    primary–backup) or a fan-out group with quorum stability (the ≥3-replica
    extension) sits behind them. *)

type sink = {
  sink_append : Wire.record -> int;
  sink_last_lsn : unit -> int;
  sink_wait_stable : lsn:int -> unit;
  sink_flush : unit -> unit;
}

val sink_of_primary : primary -> sink

(** {2 Fan-out groups} *)

type group
(** The same record stream replicated to several backups; a record is
    stable once [quorum] backups acknowledged it. *)

val create_group : primary list -> quorum:int -> group
(** All members must be freshly created (empty logs).  [quorum] in
    [1..length]. *)

val sink_of_group : group -> sink

val group_disable : group -> int -> unit
(** Declare backup [i] dead: it no longer counts toward (or blocks) the
    quorum.  If every backup is disabled the group is fully disabled. *)

val group_members : group -> primary list

(** {1 Secondary side} *)

val create_secondary :
  ?batch:batch_config ->
  ?chan_progress:(unit -> (int * int) list) ->
  ?chan_restore:((int * int) list -> unit) ->
  ?journal:(int -> Wire.record -> unit) ->
  ?base_lsn:int ->
  ?workers:int ->
  Engine.t ->
  inb:Wire.message Mailbox.chan ->
  out:Wire.message Mailbox.chan ->
  replay_cost:Time.t ->
  delta_cost:Time.t ->
  handler:(Wire.record -> unit) ->
  secondary
(** [replay_cost] is charged per thread-waking record (sync tuples, syscall
    results); [delta_cost] per TCP delta.  [batch] (default {!unbatched})
    supplies the ack-coalescing knobs.  [chan_progress] (default: none) is
    drained at each ack to piggyback cumulative per-channel replay cursors
    (see {!Det.chan_progress}); [chan_restore] (default: none) puts drained
    cursors back when the ack could not be sent on a full ring (see
    {!Det.chan_progress_restore}).

    [workers] (default 1) is the replay-executor pool size.  At 1 the
    receive loop is the original serial drain.  Above 1 the loop becomes a
    dispatcher: TCP deltas apply inline in LSN order, thread-waking
    records are routed to executor [ft_pid mod workers] (keeping each
    replicated thread's deliveries FIFO), and the per-channel admission
    gate in {!Det} supplies all remaining serialization.  Acks still carry
    a gapless cumulative watermark: out-of-order completions pool until
    the LSN gap below them closes.

    [journal] (default: none) is invoked per record as it comes off the
    mailbox, in LSN order on both replay paths and before any replay cost
    is charged — regeneration records the backup's authoritative receive
    timeline here.  [base_lsn] (default 0) offsets the replay watermark:
    a backup spliced in at an epoch switch starts acking from the switch
    cutoff instead of LSN 0. *)

val spawn_secondary_rx : secondary -> (string -> (unit -> unit) -> Engine.proc) -> unit
(** Start the receive loop (plus the executor pool when [workers > 1]):
    per record, charge [replay_cost], invoke the handler, and acknowledge
    cumulatively — every [ack_every] records while the queue is hot,
    otherwise via the delayed-ack timer. *)

val received_lsn : secondary -> int
(** Contiguous replay watermark: every LSN [<= received_lsn] is replayed
    (with parallel executors, completions above a gap do not count until
    the gap closes). *)

val first_lsn : secondary -> int option
(** The first LSN this secondary ever received off the wire, or [None]
    when nothing arrived yet.  The epoch-switch invariant check: a
    regenerated backup's first consumed LSN must equal the switch cutoff —
    no gap, no overlap. *)

val queue_depth : secondary -> int
(** Replay backlog right now: frames waiting in the mailbox plus records
    dispatched to executors but not yet completed.  A pure read (safe from
    raw timer context) — {!Lagmon} samples it. *)

val send_heartbeat_s : secondary -> seq:int -> unit

val last_peer_activity_s : secondary -> Time.t

val drained : secondary -> bool
(** True when the (halted) primary can send nothing more and everything
    already sent has been handled — including records still queued on (or
    running in) replay executors. *)

(** {1 Traffic metrics (both mailbox directions)} *)

val p_records : primary -> int

val p_frames : primary -> int
(** Record-bearing frames actually sent ([<= p_records] with batching). *)

val traffic_msgs : primary -> secondary -> int
val traffic_bytes : primary -> secondary -> int
val reset_traffic : primary -> secondary -> unit
