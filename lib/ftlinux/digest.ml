open Ftsim_sim

type snapshot = { snap_section : int; snap_digest : int }

(* Snapshots are kept newest-first; beyond [snap_cap] we keep folding the
   rolling digests but stop storing per-section history.  The caps are the
   same constants on both replicas, so truncated histories still align. *)
let snap_cap = 1 lsl 18
let tsnap_cap = 1 lsl 14

(* Per-thread recorder: rolling digest over the thread's syscall results
   (per-thread FIFO order, identical on both replicas), plus a bounded
   per-fold snapshot history so the sequences compare elementwise. *)
type tstate = {
  mutable td : int;
  mutable tcount : int;  (* folds so far *)
  mutable tsnaps : (int * int) list;  (* (fold index, digest), newest first *)
  mutable tnsnaps : int;
  mutable tsealed : int option;  (* comparable fold count *)
}

(* Per-channel recorder: rolling digest over the channel's section stream.
   A channel's sections are totally ordered across replicas (chan_seq
   order), so the two replicas' per-channel fold sequences compare
   elementwise even though the global interleaving of sections differs.
   Each snapshot also notes the recorder-wide section count (the epoch) at
   the fold, so a primary-side divergence can be attributed to the last
   output commit at or before it. *)
type cstate = {
  mutable cd : int;
  mutable ccount : int;  (* sections folded into this channel *)
  mutable csnaps : (int * int * int) list;
      (* (fold index, digest, epoch), newest first *)
  mutable cnsnaps : int;
  mutable csealed : int option;  (* comparable fold count *)
}

type t = {
  chans : (int, cstate) Hashtbl.t;
  threads : (int, tstate) Hashtbl.t;
  mutable nsections : int;  (* total sections digested (the epoch) *)
  mutable commits : (int * int) list;  (* (epoch, lsn), newest first *)
  mutable sealed_at : int option;  (* comparable section count *)
}

let create () =
  {
    chans = Hashtbl.create 16;
    threads = Hashtbl.create 16;
    nsections = 0;
    commits = [];
    sealed_at = None;
  }

(* splitmix-style finalizer constrained to OCaml's 63-bit ints. *)
let mix h v =
  let h = (h lxor v) * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 29)) * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 32)

let chan_state t ch =
  match Hashtbl.find_opt t.chans ch with
  | Some cs -> cs
  | None ->
      let cs =
        {
          cd = mix 0x5eed ch;
          ccount = 0;
          csnaps = [];
          cnsnaps = 0;
          (* A channel first seen after go-live carries only live execution:
             nothing of it is comparable. *)
          csealed = (if t.sealed_at = None then None else Some 0);
        }
      in
      Hashtbl.replace t.chans ch cs;
      cs

let fold_chan t ~chan v =
  let cs = chan_state t chan in
  cs.cd <- mix cs.cd v

let fold t v = fold_chan t ~chan:0 v

let fold_string t s =
  fold t (Payload.stream_hash 0x517 [ Payload.of_string s ])

let thread_state t ft_pid =
  match Hashtbl.find_opt t.threads ft_pid with
  | Some ts -> ts
  | None ->
      let ts =
        {
          td = mix 0x7ead ft_pid;
          tcount = 0;
          tsnaps = [];
          tnsnaps = 0;
          (* A thread first seen after go-live is all-live execution:
             nothing of it is comparable. *)
          tsealed = (if t.sealed_at = None then None else Some 0);
        }
      in
      Hashtbl.replace t.threads ft_pid ts;
      ts

let fold_thread t ~ft_pid v =
  let ts = thread_state t ft_pid in
  ts.td <- mix ts.td v;
  ts.tcount <- ts.tcount + 1;
  if ts.tnsnaps < tsnap_cap then begin
    ts.tsnaps <- (ts.tcount, ts.td) :: ts.tsnaps;
    ts.tnsnaps <- ts.tnsnaps + 1
  end

let thread_digest t ~ft_pid = (thread_state t ft_pid).td

let hash_payload = function
  | Wire.P_plain -> 1
  | Wire.P_timed_outcome b -> mix 2 (if b then 1 else 0)
  | Wire.P_thread_spawn p -> mix 3 p
  | Wire.P_fs_read_len n -> mix 4 n

let section_end t ~ft_pid ~thread_seq ~chans ~payload =
  t.nsections <- t.nsections + 1;
  let pv = hash_payload payload in
  let tdv = thread_digest t ~ft_pid in
  List.iter
    (fun (ch, chan_seq) ->
      let cs = chan_state t ch in
      cs.cd <- mix cs.cd chan_seq;
      cs.cd <- mix cs.cd ft_pid;
      cs.cd <- mix cs.cd thread_seq;
      cs.cd <- mix cs.cd pv;
      cs.cd <- mix cs.cd tdv;
      cs.ccount <- cs.ccount + 1;
      if cs.cnsnaps < snap_cap then begin
        cs.csnaps <- (cs.ccount, cs.cd, t.nsections) :: cs.csnaps;
        cs.cnsnaps <- cs.cnsnaps + 1
      end)
    chans

let mark_commit t ~lsn = t.commits <- (t.nsections, lsn) :: t.commits
let commit_marks t = List.rev t.commits

let seal t =
  if t.sealed_at = None then begin
    t.sealed_at <- Some t.nsections;
    Hashtbl.iter
      (fun _ cs -> if cs.csealed = None then cs.csealed <- Some cs.ccount)
      t.chans;
    Hashtbl.iter
      (fun _ ts -> if ts.tsealed = None then ts.tsealed <- Some ts.tcount)
      t.threads
  end

let sealed t = t.sealed_at <> None
let sections t = t.nsections

(* A cap is a point-in-time comparison boundary that — unlike [seal] — does
   not stop the digest from growing: the capped digest stays fully
   comparable against replicas of its *own* continued stream while the
   capture bounds comparisons against replicas of its *previous* stream.
   This is the promotion case: a survivor promoted at failover keeps
   folding (its post-promotion sections are recorded and replayed by the
   regenerated backup), but against the dead primary only the folds up to
   the promotion point are meaningful — beyond it the two histories
   legitimately differ (staged-but-lost records vs new-epoch execution). *)
type cap = {
  cap_chans : (int * int) list;  (* channel -> comparable fold count *)
  cap_threads : (int * int) list;  (* ft_pid -> comparable fold count *)
}

let capture t =
  {
    cap_chans = Hashtbl.fold (fun ch cs acc -> (ch, cs.ccount) :: acc) t.chans [];
    cap_threads =
      Hashtbl.fold (fun pid ts acc -> (pid, ts.tcount) :: acc) t.threads [];
  }

let truncated t =
  Hashtbl.fold (fun _ cs acc -> acc || cs.ccount > cs.cnsnaps) t.chans false

(* Effective comparison bound for one channel: the seal (if any) and the
   cap entry (if a cap is given) both limit the walk; a channel absent
   from a cap was first seen after the capture, so nothing of it is
   comparable under that cap. *)
let cap_bound entries key =
  match entries with
  | None -> max_int
  | Some l -> ( match List.assoc_opt key l with Some n -> n | None -> 0)

let comparable_chan cap chan cs =
  let upto = match cs.csealed with Some n -> n | None -> max_int in
  let upto =
    match cap with
    | Some c -> min upto (cap_bound (Some c.cap_chans) chan)
    | None -> upto
  in
  List.filter (fun (c, _, _) -> c <= upto) cs.csnaps |> List.rev

let comparable t =
  Hashtbl.fold
    (fun ch cs acc ->
      ( ch,
        List.map
          (fun (c, d, _) -> { snap_section = c; snap_digest = d })
          (comparable_chan None ch cs) )
      :: acc)
    t.chans []
  |> List.sort compare

let value t =
  let h = ref 0x5eed in
  let chs = Hashtbl.fold (fun k _ acc -> k :: acc) t.chans [] in
  List.iter
    (fun ch ->
      h := mix !h ch;
      h := mix !h (chan_state t ch).cd)
    (List.sort compare chs);
  let pids = Hashtbl.fold (fun k _ acc -> k :: acc) t.threads [] in
  List.iter
    (fun p ->
      h := mix !h p;
      h := mix !h (thread_digest t ~ft_pid:p))
    (List.sort compare pids);
  !h

type divergence = {
  at_section : int;
  in_channel : int option;
  in_thread : int option;
  primary_digest : int;
  secondary_digest : int;
  after_commit_lsn : int option;
}

let comparable_thread cap pid ts =
  let upto = match ts.tsealed with Some n -> n | None -> max_int in
  let upto =
    match cap with
    | Some c -> min upto (cap_bound (Some c.cap_threads) pid)
    | None -> upto
  in
  List.rev (List.filter (fun (c, _) -> c <= upto) ts.tsnaps)

(* Every channel's fold sequence is totally ordered across replicas, so
   shared channels compare elementwise.  Among the per-channel first
   mismatches, report the one the primary digested earliest (smallest
   epoch), attributed to the last output commit at or before it. *)
let compare_channels ~secondary_cap ~primary ~secondary =
  let chs =
    Hashtbl.fold (fun ch _ acc -> ch :: acc) primary.chans []
    |> List.filter (fun ch -> Hashtbl.mem secondary.chans ch)
    |> List.sort compare
  in
  let rec walk_chan ch ps ss =
    match (ps, ss) with
    | (pc, pd, pepoch) :: ps', (_, sd, _) :: ss' ->
        if pd <> sd then
          let lsn =
            List.fold_left
              (fun acc (epoch, lsn) -> if epoch <= pepoch then Some lsn else acc)
              None
              (commit_marks primary)
          in
          Some
            ( pepoch,
              {
                at_section = pc;
                in_channel = Some ch;
                in_thread = None;
                primary_digest = pd;
                secondary_digest = sd;
                after_commit_lsn = lsn;
              } )
        else walk_chan ch ps' ss'
    | _, [] | [], _ -> None
  in
  List.fold_left
    (fun acc ch ->
      let cand =
        walk_chan ch
          (comparable_chan None ch (chan_state primary ch))
          (comparable_chan secondary_cap ch (chan_state secondary ch))
      in
      match (acc, cand) with
      | None, c -> c
      | Some _, None -> acc
      | Some (e0, _), Some (e1, _) -> if e1 < e0 then cand else acc)
    None chs
  |> Option.map snd

(* A thread's syscall results replay in per-thread FIFO order, so for every
   ft_pid the two replicas' fold sequences must agree elementwise over the
   shared (sealed-bounded) prefix — this covers syscall-heavy applications
   that rarely enter deterministic sections. *)
let compare_threads ~secondary_cap ~primary ~secondary =
  let pids =
    Hashtbl.fold (fun pid _ acc -> pid :: acc) primary.threads []
    |> List.filter (fun pid -> Hashtbl.mem secondary.threads pid)
    |> List.sort compare
  in
  let rec walk_pid pid ps ss =
    match (ps, ss) with
    | (pc, pd) :: ps', (_, sd) :: ss' ->
        if pd <> sd then
          Some
            {
              at_section = pc;
              in_channel = None;
              in_thread = Some pid;
              primary_digest = pd;
              secondary_digest = sd;
              after_commit_lsn = None;
            }
        else walk_pid pid ps' ss'
    | _, [] | [], _ -> None
  in
  List.fold_left
    (fun acc pid ->
      match acc with
      | Some _ -> acc
      | None ->
          walk_pid pid
            (comparable_thread None pid (thread_state primary pid))
            (comparable_thread secondary_cap pid (thread_state secondary pid)))
    None pids

let compare_replicas_capped ~secondary_cap ~primary ~secondary =
  match compare_channels ~secondary_cap ~primary ~secondary with
  | Some d -> Some d
  | None -> compare_threads ~secondary_cap ~primary ~secondary

let compare_replicas ~primary ~secondary =
  compare_replicas_capped ~secondary_cap:None ~primary ~secondary

let thread_folds t ~ft_pid = (thread_state t ft_pid).tcount
let chan_folds t ~chan = (chan_state t chan).ccount

let comparison_points t =
  Hashtbl.fold (fun _ cs acc -> acc + cs.ccount) t.chans 0
  + Hashtbl.fold (fun _ ts acc -> acc + ts.tcount) t.threads 0
