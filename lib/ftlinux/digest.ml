open Ftsim_sim

type snapshot = { snap_section : int; snap_digest : int }

(* Snapshots are kept newest-first; beyond [snap_cap] we keep folding the
   rolling digests but stop storing per-section history.  The caps are the
   same constants on both replicas, so truncated histories still align. *)
let snap_cap = 1 lsl 18
let tsnap_cap = 1 lsl 14

(* Per-thread recorder: rolling digest over the thread's syscall results
   (per-thread FIFO order, identical on both replicas), plus a bounded
   per-fold snapshot history so the sequences compare elementwise. *)
type tstate = {
  mutable td : int;
  mutable tcount : int;  (* folds so far *)
  mutable tsnaps : (int * int) list;  (* (fold index, digest), newest first *)
  mutable tnsnaps : int;
  mutable tsealed : int option;  (* comparable fold count *)
}

type t = {
  mutable global : int;
  threads : (int, tstate) Hashtbl.t;
  mutable snaps : snapshot list;
  mutable nsnaps : int;
  mutable nsections : int;
  mutable commits : (int * int) list;  (* (section, lsn), newest first *)
  mutable sealed_at : int option;  (* comparable section count *)
}

let create () =
  {
    global = 0x5eed;
    threads = Hashtbl.create 16;
    snaps = [];
    nsnaps = 0;
    nsections = 0;
    commits = [];
    sealed_at = None;
  }

(* splitmix-style finalizer constrained to OCaml's 63-bit ints. *)
let mix h v =
  let h = (h lxor v) * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 29)) * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 32)

let fold t v = t.global <- mix t.global v

let fold_string t s =
  fold t (Payload.stream_hash 0x517 [ Payload.of_string s ])

let thread_state t ft_pid =
  match Hashtbl.find_opt t.threads ft_pid with
  | Some ts -> ts
  | None ->
      let ts =
        {
          td = mix 0x7ead ft_pid;
          tcount = 0;
          tsnaps = [];
          tnsnaps = 0;
          (* A thread first seen after go-live is all-live execution:
             nothing of it is comparable. *)
          tsealed = (if t.sealed_at = None then None else Some 0);
        }
      in
      Hashtbl.replace t.threads ft_pid ts;
      ts

let fold_thread t ~ft_pid v =
  let ts = thread_state t ft_pid in
  ts.td <- mix ts.td v;
  ts.tcount <- ts.tcount + 1;
  if ts.tnsnaps < tsnap_cap then begin
    ts.tsnaps <- (ts.tcount, ts.td) :: ts.tsnaps;
    ts.tnsnaps <- ts.tnsnaps + 1
  end

let thread_digest t ~ft_pid = (thread_state t ft_pid).td

let hash_payload = function
  | Wire.P_plain -> 1
  | Wire.P_timed_outcome b -> mix 2 (if b then 1 else 0)
  | Wire.P_thread_spawn p -> mix 3 p
  | Wire.P_fs_read_len n -> mix 4 n

let section_end t ~ft_pid ~thread_seq ~global_seq ~payload =
  fold t global_seq;
  fold t ft_pid;
  fold t thread_seq;
  fold t (hash_payload payload);
  fold t (thread_digest t ~ft_pid);
  t.nsections <- t.nsections + 1;
  if t.nsnaps < snap_cap then begin
    t.snaps <- { snap_section = t.nsections; snap_digest = t.global } :: t.snaps;
    t.nsnaps <- t.nsnaps + 1
  end

let mark_commit t ~lsn = t.commits <- (t.nsections, lsn) :: t.commits
let commit_marks t = List.rev t.commits

let seal t =
  if t.sealed_at = None then begin
    t.sealed_at <- Some t.nsections;
    Hashtbl.iter
      (fun _ ts -> if ts.tsealed = None then ts.tsealed <- Some ts.tcount)
      t.threads
  end

let sealed t = t.sealed_at <> None
let sections t = t.nsections
let truncated t = t.nsections > t.nsnaps

let comparable t =
  let upto = match t.sealed_at with Some n -> n | None -> max_int in
  List.rev (List.filter (fun s -> s.snap_section <= upto) t.snaps)

let value t =
  let h = ref t.global in
  let pids = Hashtbl.fold (fun k _ acc -> k :: acc) t.threads [] in
  List.iter
    (fun p ->
      h := mix !h p;
      h := mix !h (thread_digest t ~ft_pid:p))
    (List.sort compare pids);
  !h

type divergence = {
  at_section : int;
  in_thread : int option;
  primary_digest : int;
  secondary_digest : int;
  after_commit_lsn : int option;
}

let comparable_thread ts =
  let upto = match ts.tsealed with Some n -> n | None -> max_int in
  List.rev (List.filter (fun (c, _) -> c <= upto) ts.tsnaps)

let compare_sections ~primary ~secondary =
  let rec walk ps ss =
    match (ps, ss) with
    | p :: ps', s :: ss' ->
        if p.snap_section <> s.snap_section then
          (* Snapshot numbering is the section count on each side; a skew
             means one replica digested a section the other never saw —
             report at the earlier index. *)
          Some
            {
              at_section = min p.snap_section s.snap_section;
              in_thread = None;
              primary_digest = p.snap_digest;
              secondary_digest = s.snap_digest;
              after_commit_lsn = None;
            }
        else if p.snap_digest <> s.snap_digest then
          let lsn =
            List.fold_left
              (fun acc (sec, lsn) ->
                if sec <= p.snap_section then Some lsn else acc)
              None
              (commit_marks primary)
          in
          Some
            {
              at_section = p.snap_section;
              in_thread = None;
              primary_digest = p.snap_digest;
              secondary_digest = s.snap_digest;
              after_commit_lsn = lsn;
            }
        else walk ps' ss'
    | _, [] | [], _ -> None
  in
  walk (comparable primary) (comparable secondary)

(* A thread's syscall results replay in per-thread FIFO order, so for every
   ft_pid the two replicas' fold sequences must agree elementwise over the
   shared (sealed-bounded) prefix — this covers syscall-heavy applications
   that rarely enter deterministic sections. *)
let compare_threads ~primary ~secondary =
  let pids =
    Hashtbl.fold (fun pid _ acc -> pid :: acc) primary.threads []
    |> List.filter (fun pid -> Hashtbl.mem secondary.threads pid)
    |> List.sort compare
  in
  let rec walk_pid pid ps ss =
    match (ps, ss) with
    | (pc, pd) :: ps', (_, sd) :: ss' ->
        if pd <> sd then
          Some
            {
              at_section = pc;
              in_thread = Some pid;
              primary_digest = pd;
              secondary_digest = sd;
              after_commit_lsn = None;
            }
        else walk_pid pid ps' ss'
    | _, [] | [], _ -> None
  in
  List.fold_left
    (fun acc pid ->
      match acc with
      | Some _ -> acc
      | None ->
          walk_pid pid
            (comparable_thread (thread_state primary pid))
            (comparable_thread (thread_state secondary pid)))
    None pids

let compare_replicas ~primary ~secondary =
  match compare_sections ~primary ~secondary with
  | Some d -> Some d
  | None -> compare_threads ~primary ~secondary

let thread_folds t ~ft_pid = (thread_state t ft_pid).tcount

let comparison_points t =
  Hashtbl.fold (fun _ ts acc -> acc + ts.tcount) t.threads t.nsections
