open Ftsim_hw

type lifecycle = Protected | Degraded | Regenerating | Outage

let lifecycle_label = function
  | Protected -> "protected"
  | Degraded -> "degraded"
  | Regenerating -> "regenerating"
  | Outage -> "outage"

type role = Primary | Backup

let role_label = function Primary -> "primary" | Backup -> "backup"

type member = {
  m_role : role;
  m_epoch : int;  (* epoch at which this replica joined the set *)
  m_partition : Partition.t;
}

(* Record-of-closures rather than a functor: Cluster and Tricluster have
   structurally different internals (one pair with role swaps vs a fan-out
   group), and callers like chaosrun only need the uniform queries. *)
type t = {
  rs_label : string;
  rs_state : unit -> lifecycle;
  rs_epoch : unit -> int;
  rs_members : unit -> member list;
  rs_failovers : unit -> int;
  rs_supports_reprotect : bool;
  rs_reprotect : unit -> unit;
}

let label t = t.rs_label
let state t = t.rs_state ()
let epoch t = t.rs_epoch ()
let members t = t.rs_members ()
let failovers t = t.rs_failovers ()
let supports_reprotect t = t.rs_supports_reprotect
let reprotect t = t.rs_reprotect ()

let partitions t = List.map (fun m -> m.m_partition) (members t)

let all_halted t =
  List.for_all (fun m -> Partition.is_halted m.m_partition) (members t)
