open Ftsim_sim
open Ftsim_netstack
open Ftsim_ftlinux

type params = {
  port : int;
  file_bytes : int;
  chunk_bytes : int;
  read_ns_per_byte : int;
}

let default_params =
  {
    port = 80;
    file_bytes = 10 * 1024 * 1024 * 1024;
    chunk_bytes = 256 * 1024;
    read_ns_per_byte = 0;
  }

let serve_one (api : Api.t) p ~on_bytes_sent sock =
  let reader =
    Http.reader_fn (fun max ->
        match api.Api.net.recv sock ~max with Ok cs -> cs | Error _ -> [])
  in
  match Http.read_headers reader with
  | None -> api.Api.net.close sock
  | Some _request ->
      let send chunk =
        match api.Api.net.send sock chunk with
        | Ok () -> true
        | Error _ -> false
      in
      if
        send
          (Payload.of_string (Http.response_header ~content_length:p.file_bytes ()))
      then begin
        let sent = ref 0 in
        let ok = ref true in
        while !ok && !sent < p.file_bytes do
          let n = min p.chunk_bytes (p.file_bytes - !sent) in
          if p.read_ns_per_byte > 0 then
            api.Api.thread.compute (Time.ns (n * p.read_ns_per_byte));
          if send (Payload.zeroes n) then begin
            sent := !sent + n;
            on_bytes_sent n
          end
          else ok := false
        done
      end;
      api.Api.net.close sock

let run ?(params = default_params) ?(on_bytes_sent = fun _ -> ()) (api : Api.t) =
  let listener = api.Api.net.listen ~port:params.port in
  let rec accept_loop i =
    let sock = api.Api.net.accept listener in
    ignore
      (api.Api.thread.spawn
         (Printf.sprintf "fileserver-conn-%d" i)
         (fun () -> serve_one api params ~on_bytes_sent sock));
    accept_loop (i + 1)
  in
  accept_loop 0
