open Ftsim_sim
open Ftsim_netstack
open Ftsim_ftlinux

type params = {
  port : int;
  file_bytes : int;
  chunk_bytes : int;
  read_ns_per_byte : int;
  listen_shards : int;
  accept_backlog : int option;
  overflow : Tcp.overflow;
  admission : int option;
}

let default_params =
  {
    port = 80;
    file_bytes = 10 * 1024 * 1024 * 1024;
    chunk_bytes = 256 * 1024;
    read_ns_per_byte = 0;
    listen_shards = 1;
    accept_backlog = None;
    overflow = `Drop;
    admission = None;
  }

let shed_header =
  Http.response_header ~status:503 ~reason:"Service Unavailable"
    ~content_length:0 ()

let serve_one (api : Api.t) p ~adm ~on_bytes_sent sock =
  let reader =
    Http.reader_fn (fun max ->
        match api.Api.net.recv sock ~max with Ok cs -> cs | Error _ -> [])
  in
  match Http.read_headers reader with
  | None -> api.Api.net.close sock
  | Some _request ->
      let admitted =
        match adm with None -> true | Some a -> Admission.try_admit a
      in
      if not admitted then begin
        (* Transfers are whole-connection units of work here, so a shed is a
           zero-body 503 and an orderly close. *)
        ignore (api.Api.net.send sock (Payload.of_string shed_header));
        api.Api.net.close sock
      end
      else
        Fun.protect
          ~finally:(fun () ->
            match adm with Some a -> Admission.release a | None -> ())
          (fun () ->
            let send chunk =
              match api.Api.net.send sock chunk with
              | Ok () -> true
              | Error _ -> false
            in
            if
              send
                (Payload.of_string
                   (Http.response_header ~content_length:p.file_bytes ()))
            then begin
              let sent = ref 0 in
              let ok = ref true in
              while !ok && !sent < p.file_bytes do
                let n = min p.chunk_bytes (p.file_bytes - !sent) in
                if p.read_ns_per_byte > 0 then
                  api.Api.thread.compute (Time.ns (n * p.read_ns_per_byte));
                if send (Payload.zeroes n) then begin
                  sent := !sent + n;
                  on_bytes_sent n
                end
                else ok := false
              done
            end;
            api.Api.net.close sock)

let run ?(params = default_params) ?(on_bytes_sent = fun _ -> ()) (api : Api.t) =
  let p = params in
  let adm =
    Option.map
      (fun limit -> Admission.create api ~name:"fileserver" ~limit ())
      p.admission
  in
  (* Per-shard connection counters keep spawned thread names deterministic
     under replication: each acceptor thread numbers only its own
     connections, so replayed interleavings of sibling acceptors cannot
     reorder the names. *)
  let accept_from ~name_of listener =
    let rec loop i =
      match api.Api.net.accept listener with
      | Error _ -> ()
      | Ok sock ->
          ignore
            (api.Api.thread.spawn (name_of i) (fun () ->
                 serve_one api p ~adm ~on_bytes_sent sock));
          loop (i + 1)
    in
    loop 0
  in
  if p.listen_shards <= 1 && p.accept_backlog = None then
    (* pre-listener-group path, byte-identical: same listen call, same
       accept sequence and thread names, all on the app-main thread *)
    accept_from
      ~name_of:(Printf.sprintf "fileserver-conn-%d")
      (api.Api.net.listen ~port:p.port)
  else begin
    let listeners =
      api.Api.net.listen_group ~port:p.port ~shards:(max 1 p.listen_shards)
        ~backlog:p.accept_backlog ~overflow:p.overflow
    in
    match listeners with
    | [] -> assert false
    | l0 :: rest ->
        let acceptors =
          List.mapi
            (fun i l ->
              let shard = i + 1 in
              api.Api.thread.spawn
                (Printf.sprintf "fileserver-acceptor-%d" shard)
                (fun () ->
                  accept_from
                    ~name_of:(Printf.sprintf "fileserver-conn-%d-%d" shard)
                    l))
            rest
        in
        accept_from ~name_of:(Printf.sprintf "fileserver-conn-0-%d") l0;
        List.iter api.Api.thread.join acceptors
  end
