open Ftsim_sim
open Ftsim_hw
open Ftsim_netstack
open Ftsim_ftlinux

type workload = Fileserver | Mongoose

let workload_of_string = function
  | "fileserver" -> Ok Fileserver
  | "mongoose" -> Ok Mongoose
  | s -> Error (Printf.sprintf "unknown workload %S (fileserver|mongoose)" s)

let workload_to_string = function
  | Fileserver -> "fileserver"
  | Mongoose -> "mongoose"

(* Small machine, tight failure detection, fast driver reload: one chaos run
   settles in a couple of simulated seconds instead of the paper's ~5 s
   recovery, so a 50-schedule campaign stays cheap. *)
let fast_config topology =
  {
    Cluster.default_config with
    topology;
    hb_period = Time.ms 5;
    hb_timeout = Time.ms 25;
    driver_load_time = Time.ms 200;
    (* Replication health is monitored on every chaos run, quietly: gauges
       and verdicts update but nothing reaches the Evlog, so repro traces
       stay byte-identical to monitor-off runs.  [stall_after] (150 ms)
       sits far above the 25 ms heartbeat timeout: a dead peer is detected
       and the monitor frozen long before a stall could be declared. *)
    lagmon = Some { Lagmon.default_config with Lagmon.quiet = true };
  }

let small4 =
  {
    Topology.sockets = 4;
    cores_per_socket = 2;
    numa_nodes = 4;
    ram_bytes = 8 * 1024 * 1024 * 1024;
  }

let server_ip = "10.0.0.1"
let client_ip = "10.0.0.9"

(* Workload sizing: the active window should overlap the schedule's fault
   window, so the transfer is made long enough that mid-stream and
   mid-failover faults are common draws. *)
let app_and_oracle ?(listen_shards = 1) ?admission workload =
  (* The oracle is one sequential connection, so any admission limit >= 1
     admits it; [allow_shed] still arms the oracle for the exact-503 retry
     path in case a shed does land (e.g. a limit shared with future load). *)
  let allow_shed = admission <> None in
  match workload with
  | Fileserver ->
      let bytes = 32 * 1024 * 1024 in
      let app api =
        Fileserver.run
          ~params:
            {
              Fileserver.default_params with
              file_bytes = bytes;
              listen_shards;
              admission;
            }
          api
      in
      let oracle client =
        (* The file server closes the connection after one response. *)
        Loadgen.verified_start client ~server:server_ip ~port:80 ~target:"/f"
          ~expect_bytes:bytes ~requests:1 ~allow_shed ()
      in
      (app, oracle)
  | Mongoose ->
      let page = 10 * 1024 in
      let app api =
        Mongoose.run
          ~params:
            {
              Mongoose.default_params with
              page_bytes = page;
              cpu_per_request = Time.ms 1;
              listen_shards;
              admission;
            }
          api
      in
      let oracle client =
        Loadgen.verified_start client ~server:server_ip ~port:80 ~target:"/"
          ~expect_bytes:page ~requests:300 ~allow_shed ()
      in
      (app, oracle)

let inject_schedule machine ~part_of sched =
  List.iter
    (fun i ->
      Machine.inject machine
        (Fault.at ~disrupts_coherency:i.Chaos.inj_disrupts i.Chaos.inj_at
           ~partition_id:(Partition.id (part_of i.Chaos.inj_target))
           i.Chaos.inj_kind))
    sched.Chaos.injections

(* Re-protection moves roles across failovers and epoch switches, so the
   live path resolves each injection's target partition at fire time
   instead of pinning partitions when the schedule is armed.  A target
   already halted (a backup hit again before its regeneration finished)
   absorbs the fault as a no-op. *)
let inject_schedule_live eng cluster sched =
  List.iter
    (fun (i : Chaos.injection) ->
      Engine.schedule eng ~at:i.Chaos.inj_at (fun () ->
          let part =
            match i.Chaos.inj_target with
            | Chaos.T_primary -> Cluster.primary_partition cluster
            | Chaos.T_backup _ -> Cluster.secondary_partition cluster
          in
          if not (Partition.is_halted part) then
            Machine.apply (Cluster.machine cluster)
              (Fault.at
                 ~disrupts_coherency:i.Chaos.inj_disrupts (Engine.now eng)
                 ~partition_id:(Partition.id part) i.Chaos.inj_kind)))
    sched.Chaos.injections

let perturb_schedule eng link sched =
  List.iter
    (fun p ->
      Engine.schedule eng ~at:p.Chaos.pert_at (fun () ->
          Link.perturb (Link.endpoint_a link) ~loss:p.Chaos.pert_loss
            ~delay:p.Chaos.pert_delay ();
          Link.perturb (Link.endpoint_b link) ~loss:p.Chaos.pert_loss
            ~delay:p.Chaos.pert_delay ());
      Engine.schedule eng
        ~at:(p.Chaos.pert_at + p.Chaos.pert_dur)
        (fun () ->
          Link.clear_perturbation (Link.endpoint_a link);
          Link.clear_perturbation (Link.endpoint_b link)))
    sched.Chaos.perturbations

(* Stop the run once the oracle has finished AND every scheduled event has
   fired and had time to play out (a post-completion fault still exercises
   failover and the digest comparison). *)
let spawn_stopper eng oracle sched =
  let last_event =
    List.fold_left
      (fun acc (i : Chaos.injection) -> max acc i.inj_at)
      0 sched.Chaos.injections
    |> fun acc ->
    List.fold_left
      (fun acc (p : Chaos.perturbation) -> max acc (p.pert_at + p.pert_dur))
      acc sched.Chaos.perturbations
  in
  ignore
    (Engine.spawn eng ~name:"chaos-stopper" (fun () ->
         Ivar.read oracle.Loadgen.oracle_done;
         Engine.sleep_until
           (max (Engine.now eng + Time.ms 200) (last_event + Time.ms 500));
         Engine.stop eng))

let judge ~oracle ~all_halted ~replay_div ~digest_div ~failovers ~sections
    ~end_at ~lag =
  let verdict =
    match replay_div with
    | Some msg -> Chaos.V_divergence ("replay mismatch: " ^ msg)
    | None -> (
        match digest_div with
        | Some d ->
            Chaos.V_divergence
              (Printf.sprintf "digest mismatch %s (primary %#x, secondary %#x%s)"
                 (match (d.Digest.in_thread, d.Digest.in_channel) with
                 | Some pid, _ ->
                     Printf.sprintf "in thread %d at syscall %d" pid
                       d.Digest.at_section
                 | None, Some ch ->
                     Printf.sprintf "in channel %d at section %d" ch
                       d.Digest.at_section
                 | None, None ->
                     Printf.sprintf "at section %d" d.Digest.at_section)
                 d.Digest.primary_digest d.Digest.secondary_digest
                 (match d.Digest.after_commit_lsn with
                 | Some lsn -> Printf.sprintf ", after committed lsn %d" lsn
                 | None -> ", before any commit"))
        | None ->
            if oracle.Loadgen.violations <> [] then
              Chaos.V_client_violation
                (String.concat "; " (List.rev oracle.Loadgen.violations))
            else if
              oracle.Loadgen.truncated
              || oracle.Loadgen.completed < oracle.Loadgen.requests
            then
              if all_halted then Chaos.V_outage
              else
                Chaos.V_client_violation
                  (Printf.sprintf
                     "stream ended after %d/%d responses with a replica alive"
                     oracle.Loadgen.completed oracle.Loadgen.requests)
            else Chaos.V_ok)
  in
  {
    Chaos.verdict;
    o_failovers = failovers;
    o_completed = oracle.Loadgen.completed;
    o_sections = sections;
    o_end = end_at;
    o_lag = lag;
  }

(* The worst replication-health verdict any of the run's monitors saw, as
   the label the campaign report serializes.  [Retired] is a planned epoch
   switch, not a health event, so retired epochs' monitors don't taint the
   label — unless every monitor retired, which can't happen (the current
   epoch's monitor is never retired). *)
let lag_label lagmons =
  match lagmons with
  | [] -> None
  | lms ->
      Some
        (Lagmon.verdict_label
           (List.fold_left
              (fun acc lm ->
                match Lagmon.worst lm with
                | Lagmon.Retired -> acc
                | v -> Lagmon.worse acc v)
              Lagmon.Ok lms))

let arm_stats eng sched = function
  | None -> ()
  | Some every ->
      ignore
        (Statsdump.arm eng ~every
           ~label:(Printf.sprintf "#%03d" sched.Chaos.sched_index))

let run_two ?on_trace ?stats_interval ?(mutate = false) ?(det_shard = true)
    ?(replay_workers = 1) ?(reprotect = false) ?(regen_delay = Time.ms 50)
    ?listen_shards ?admission ~workload sched =
  let eng = Engine.create ~seed:sched.Chaos.sched_seed () in
  arm_stats eng sched stats_interval;
  let link =
    Link.create eng ~bandwidth_bps:1_000_000_000 ~latency:(Time.us 100)
      ~seed_split:(Engine.prng eng) ()
  in
  let app, mk_oracle = app_and_oracle ?listen_shards ?admission workload in
  let cluster =
    Cluster.create eng
      ~config:
        {
          (fast_config Topology.small) with
          Cluster.det_shard;
          replay_workers;
          reprotect;
          regen_delay;
        }
      ~link:(Link.endpoint_a link) ~app ()
  in
  if mutate then
    Namespace.mutate_skip_digest
      (Cluster.secondary_namespace cluster)
      ~global_seq:0;
  (if reprotect then inject_schedule_live eng cluster sched
   else
     let part_of = function
       | Chaos.T_primary -> Cluster.primary_partition cluster
       | Chaos.T_backup _ -> Cluster.secondary_partition cluster
     in
     inject_schedule (Cluster.machine cluster) ~part_of sched);
  perturb_schedule eng link sched;
  let client = Host.create eng ~ip:client_ip (Link.endpoint_b link) in
  let oracle = mk_oracle client in
  spawn_stopper eng oracle sched;
  Engine.run ~until:sched.Chaos.horizon eng;
  Cluster.shutdown cluster;
  let all_halted = Replica_set.all_halted (Cluster.replica_set cluster) in
  let sections =
    match Namespace.digest (Cluster.primary_namespace cluster) with
    | Some d -> Digest.comparison_points d
    | None -> 0
  in
  let outcome =
    judge ~oracle ~all_halted
      ~replay_div:(Cluster.replay_divergence cluster)
      ~digest_div:(Cluster.compare_digests cluster)
      ~failovers:(Cluster.failover_count cluster)
      ~sections ~end_at:(Engine.now eng)
      ~lag:(lag_label (List.map snd (Cluster.lagmons cluster)))
  in
  (match on_trace with Some f -> f (Engine.evlog eng) | None -> ());
  outcome

let run_three ?on_trace ?stats_interval ?(mutate = false) ?(det_shard = true)
    ?(replay_workers = 1) ?listen_shards ?admission ~workload sched =
  let eng = Engine.create ~seed:sched.Chaos.sched_seed () in
  arm_stats eng sched stats_interval;
  let link =
    Link.create eng ~bandwidth_bps:1_000_000_000 ~latency:(Time.us 100)
      ~seed_split:(Engine.prng eng) ()
  in
  let app, mk_oracle = app_and_oracle ?listen_shards ?admission workload in
  let tri =
    Tricluster.create eng
      ~config:{ (fast_config small4) with Cluster.det_shard; replay_workers }
      ~link:(Link.endpoint_a link) ~app ()
  in
  if mutate then
    Namespace.mutate_skip_digest (Tricluster.backup_namespace tri 0)
      ~global_seq:0;
  let part_of = function
    | Chaos.T_primary -> Tricluster.primary_partition tri
    | Chaos.T_backup i -> Tricluster.backup_partition tri (i mod 2)
  in
  inject_schedule (Tricluster.machine tri) ~part_of sched;
  perturb_schedule eng link sched;
  let client = Host.create eng ~ip:client_ip (Link.endpoint_b link) in
  let oracle = mk_oracle client in
  spawn_stopper eng oracle sched;
  Engine.run ~until:sched.Chaos.horizon eng;
  Tricluster.shutdown tri;
  let all_halted =
    Partition.is_halted (Tricluster.primary_partition tri)
    && Partition.is_halted (Tricluster.backup_partition tri 0)
    && Partition.is_halted (Tricluster.backup_partition tri 1)
  in
  let digest_div =
    match Tricluster.compare_digests tri ~backup:0 with
    | Some d -> Some d
    | None -> Tricluster.compare_digests tri ~backup:1
  in
  let sections =
    match Namespace.digest (Tricluster.primary_namespace tri) with
    | Some d -> Digest.comparison_points d
    | None -> 0
  in
  let outcome =
    judge ~oracle ~all_halted
      ~replay_div:(Tricluster.replay_divergence tri)
      ~digest_div
      ~failovers:(match Tricluster.winner tri with Some _ -> 1 | None -> 0)
      ~sections ~end_at:(Engine.now eng)
      ~lag:(lag_label (Tricluster.lagmons tri))
  in
  (match on_trace with Some f -> f (Engine.evlog eng) | None -> ());
  outcome

let run ?on_trace ?stats_interval ?mutate ?det_shard ?replay_workers
    ?(reprotect = false) ?regen_delay ?listen_shards ?admission ~workload
    ~replicas sched =
  match replicas with
  | 2 ->
      run_two ?on_trace ?stats_interval ?mutate ?det_shard ?replay_workers
        ~reprotect ?regen_delay ?listen_shards ?admission ~workload sched
  | 3 ->
      if reprotect then
        invalid_arg "Chaosrun.run: re-protection needs replicas = 2";
      run_three ?on_trace ?stats_interval ?mutate ?det_shard ?replay_workers
        ?listen_shards ?admission ~workload sched
  | n -> invalid_arg (Printf.sprintf "Chaosrun.run: %d replicas" n)
