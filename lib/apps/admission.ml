(* Admission control for the serving path: a bounded in-flight budget so
   overload degrades into explicit load-shed responses instead of unbounded
   queueing.

   Replication: the budget counter is touched only inside critical sections
   of a replicated pthread mutex, so the lock-acquisition order — and with
   it every admit/shed decision — rides the sync-tuple stream and replays
   identically on the secondary.  No new wire records are needed. *)

open Ftsim_sim
open Ftsim_kernel
open Ftsim_ftlinux

type t = {
  pt : Pthread.t;
  mu : Pthread.mutex;
  limit : int;
  mutable in_flight : int;
  m_admitted : Metrics.Counter.t;
  m_shed : Metrics.Counter.t;
}

let create (api : Api.t) ?(name = "server") ~limit () =
  if limit < 1 then invalid_arg "Admission.create: limit must be >= 1";
  let reg = Engine.metrics (Kernel.engine api.Api.kernel) in
  (* Metric names are scoped by kernel so the primary's and the replaying
     secondary's controllers chart separately instead of double-counting. *)
  let m what =
    Metrics.Registry.counter reg
      (Printf.sprintf "admission.%s.%s.%s" (Kernel.name api.Api.kernel) name what)
  in
  {
    pt = api.Api.pt;
    mu = Pthread.mutex_create api.Api.pt;
    limit;
    in_flight = 0;
    m_admitted = m "admitted";
    m_shed = m "shed";
  }

let try_admit t =
  Pthread.mutex_lock t.pt t.mu;
  let ok = t.in_flight < t.limit in
  if ok then t.in_flight <- t.in_flight + 1;
  Pthread.mutex_unlock t.pt t.mu;
  if ok then Metrics.Counter.incr t.m_admitted
  else Metrics.Counter.incr t.m_shed;
  ok

let release t =
  Pthread.mutex_lock t.pt t.mu;
  if t.in_flight > 0 then t.in_flight <- t.in_flight - 1;
  Pthread.mutex_unlock t.pt t.mu

let with_admission t ~shed f = if try_admit t then Fun.protect ~finally:(fun () -> release t) f else shed ()

let limit t = t.limit
let admitted t = Metrics.Counter.value t.m_admitted
let shed t = Metrics.Counter.value t.m_shed
