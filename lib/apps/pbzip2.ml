open Ftsim_sim
open Ftsim_kernel
open Ftsim_ftlinux

type params = {
  file_bytes : int;
  block_bytes : int;
  workers : int;
  read_ns_per_byte : int;
  compress_ns_per_byte : int;
  write_ns_per_byte : int;
  queue_capacity : int;
}

let default_params =
  {
    file_bytes = 1024 * 1024 * 1024;
    block_bytes = 100 * 1024;
    workers = 32;
    read_ns_per_byte = 1;
    compress_ns_per_byte = 460;
    write_ns_per_byte = 1;
    queue_capacity = 8;
  }

let block_count p = (p.file_bytes + p.block_bytes - 1) / p.block_bytes

type block = { idx : int; bytes : int }

let run ?(params = default_params) ?(on_block_done = fun _ -> ()) (api : Api.t) =
  let pt = api.Api.pt in
  let p = params in
  let nblocks = block_count p in
  let input_q : block Workqueue.t = Workqueue.create pt ~capacity:p.queue_capacity in
  let output_q : block Workqueue.t = Workqueue.create pt ~capacity:p.queue_capacity in
  (* Like the real PBZIP2: a global progress counter updated under a mutex
     by every worker, and an output-file mutex taken by the writer. *)
  let progress_m = Pthread.mutex_create pt in
  let progress = ref 0 in
  let outfile_m = Pthread.mutex_create pt in
  let producer =
    api.Api.thread.spawn "pbzip2-producer" (fun () ->
        for idx = 0 to nblocks - 1 do
          let bytes =
            min p.block_bytes (p.file_bytes - (idx * p.block_bytes))
          in
          api.Api.thread.compute (Time.ns (bytes * p.read_ns_per_byte));
          Workqueue.push pt input_q { idx; bytes }
        done;
        Workqueue.close pt input_q)
  in
  let workers =
    List.init p.workers (fun w ->
        api.Api.thread.spawn
          (Printf.sprintf "pbzip2-worker-%d" w)
          (fun () ->
            let rec loop () =
              match Workqueue.pop pt input_q with
              | None -> ()
              | Some b ->
                  api.Api.thread.compute (Time.ns (b.bytes * p.compress_ns_per_byte));
                  Pthread.mutex_lock pt progress_m;
                  incr progress;
                  Pthread.mutex_unlock pt progress_m;
                  Workqueue.push pt output_q b;
                  loop ()
            in
            loop ()))
  in
  let writer =
    api.Api.thread.spawn "pbzip2-writer" (fun () ->
        (* Blocks finish out of order; commit them in file order. *)
        let held : (int, block) Hashtbl.t = Hashtbl.create 64 in
        let next = ref 0 in
        let commit b =
          Pthread.mutex_lock pt outfile_m;
          api.Api.thread.compute (Time.ns (b.bytes * p.write_ns_per_byte / 3));
          Pthread.mutex_unlock pt outfile_m;
          on_block_done b.idx;
          incr next
        in
        let rec drain_held () =
          match Hashtbl.find_opt held !next with
          | Some b ->
              Hashtbl.remove held !next;
              commit b;
              drain_held ()
          | None -> ()
        in
        let rec loop () =
          if !next < nblocks then
            match Workqueue.pop pt output_q with
            | None -> ()
            | Some b ->
                if b.idx = !next then begin
                  commit b;
                  drain_held ()
                end
                else Hashtbl.replace held b.idx b;
                loop ()
        in
        loop ())
  in
  api.Api.thread.join producer;
  List.iter api.Api.thread.join workers;
  Workqueue.close pt output_q;
  api.Api.thread.join writer
