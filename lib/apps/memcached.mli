(** Memcached, in two roles.

    {b Memory model} (paper Fig. 1): the paper runs memcached under a
    CloudSuite load generator at dataset multipliers 3×–180× and classifies
    a physical-memory dump.  [apply_load] reproduces the footprint on a
    {!Ftsim_kernel.Memlayout}: anonymous user memory for the item heap,
    kernel slab for sockets/connection tracking (scaling with offered
    load), and a modest page cache.  Coefficients are calibrated so the
    180× point lands on the paper's ≈15 % Ignored / 20 % Delayed / 65 %
    User split; the shape across multipliers then follows from the model.

    {b Server} (for examples): a small text-protocol key-value cache
    runnable on the replicated API. *)

open Ftsim_netstack
open Ftsim_ftlinux

(** {1 Memory model} *)

type footprint = { user_bytes : int; slab_bytes : int; page_cache_bytes : int }

val footprint : multiplier:int -> footprint

val apply_load : Ftsim_kernel.Memlayout.t -> multiplier:int -> unit
(** Allocate the footprint on the layout.  Raises
    [Ftsim_kernel.Memlayout.Out_of_memory] if the dataset does not fit. *)

(** {1 Key-value server} *)

type params = {
  port : int;
  worker_threads : int;
  lock_stripes : int;
      (** store-lock stripes (default 1 = one global store mutex); each
          stripe's mutex is its own replicated sync object, so the sharded
          det core streams distinct stripes on distinct channels *)
  listen_shards : int;
      (** accept-queue shards ({!Tcp.listen_group}); 1 = the classic
          single listener on the app-main thread *)
  accept_backlog : int option;  (** per-shard backlog bound; [None] = unbounded *)
  overflow : Tcp.overflow;  (** SYN fate when a shard's backlog is full *)
  admission : int option;
      (** concurrent-connection budget ({!Admission}); saturated
          connections get ["BUSY\r\n"] and a close; [None] = admission
          off *)
}

val default_params : params

val server : ?params:params -> ?on_op:(string -> unit) -> Api.app
(** Protocol, line-oriented over TCP:
    ["set <key> <nbytes>\r\n<nbytes of value>"] → ["STORED\r\n"];
    ["get <key>\r\n"] → ["VALUE <nbytes>\r\n<value>"] or ["MISS\r\n"];
    ["quit\r\n"] closes.  [on_op] fires per completed operation with the
    verb. *)
