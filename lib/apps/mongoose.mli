(** The Mongoose web server (paper §4.2).

    One listening thread accepts connections and delegates processing to
    worker threads through a shared queue protected by a pthread lock and a
    condition variable — the structure the paper describes.  Each request
    burns a configurable CPU loop (the paper's artificial per-request
    computation) and answers with a static page. *)

open Ftsim_sim
open Ftsim_netstack
open Ftsim_ftlinux

type params = {
  port : int;
  workers : int;
  page_bytes : int;  (** response body size (paper: 10 KB) *)
  cpu_per_request : Time.t;  (** the artificial CPU loop *)
  accept_cost : Time.t;
      (** kernel accept(2)/socket-setup path, serialized per acceptor
          thread — what caps the unloaded request rate *)
  queue_capacity : int;
  listen_shards : int;
      (** accept-queue shards ({!Tcp.listen_group}); 1 = the classic
          single listener on the app-main thread *)
  accept_backlog : int option;  (** per-shard backlog bound; [None] = unbounded *)
  overflow : Tcp.overflow;  (** SYN fate when a shard's backlog is full *)
  admission : int option;
      (** in-flight request budget ({!Admission}); saturated requests get
          an HTTP 503; [None] = admission control off *)
}

val default_params : params
(** Port 80, 32 workers, 10 KB page, no CPU loop, 250 µs accept path,
    1 shard, unbounded backlog, admission off. *)

val run : ?params:params -> ?on_request:(unit -> unit) -> Api.app
(** Serve forever; [on_request] fires when a response has been fully
    handed to the TCP stack. *)
