(** Client-side load generators, run on a separate {!Ftsim_netstack.Host}
    across the modelled 1 Gb/s link — as the paper runs ApacheBench and
    wget on a client machine.

    [ab] is ApacheBench-like: closed-loop workers, one TCP connection per
    request (ab's default, no keep-alive).  [wget] downloads one file on one
    connection, recording a throughput time series — the probe of the
    failover experiment (Fig. 8). *)

open Ftsim_sim
open Ftsim_netstack

(** {1 ApacheBench} *)

type ab_stats = {
  completed : Metrics.Counter.t;
  errors : Metrics.Counter.t;
  latency : Metrics.Hist.t;  (** per-request seconds *)
  latency_w : Metrics.Whist.t;
      (** the same per-request samples in milliseconds, windowed on
          completion time ([latency_window] wide) — percentiles can be
          read per interval, e.g. across a failover *)
  completions : Metrics.Series.t;  (** requests per time bucket *)
}

type ab

val ab_start :
  Host.t ->
  server:string ->
  port:int ->
  target:string ->
  concurrency:int ->
  ?response_bytes_hint:int ->
  ?latency_window:Time.t ->
  ?on_complete:(at:Time.t -> latency:Time.t -> unit) ->
  unit ->
  ab
(** Start [concurrency] closed-loop request workers.  [latency_window]
    (default 100 ms) sizes [latency_w]'s windows; [on_complete] fires once
    per successful request with its completion time and latency (the SLO
    reporter collects raw completions through it). *)

val ab_stats : ab -> ab_stats

val ab_stop : ab -> unit
(** Workers finish their in-flight request and exit. *)

(** {1 Open-loop generator}

    The C10K client.  Arrivals are driven by a clock — fixed-rate or
    Poisson — not by completions, so a slowing server faces undiminished
    offered load and the concurrent-connection count grows until the
    server sheds or catches up.  Each arrival is one connection, one GET,
    one classified outcome. *)

type ol_stats = {
  ol_ok : Metrics.Counter.t;  (** verified 200s, full body received *)
  ol_shed : Metrics.Counter.t;  (** explicit zero-body 503 load sheds *)
  ol_errors : Metrics.Counter.t;
      (** everything else: resets, truncations, malformed responses *)
  ol_latency_w : Metrics.Whist.t;
      (** per successful request, milliseconds, windowed on completion *)
}

type ol

val ol_start :
  Host.t ->
  server:string ->
  port:int ->
  target:string ->
  rate:float ->
  conns:int ->
  ?poisson:bool ->
  ?seed:int ->
  ?latency_window:Time.t ->
  ?timeout:Time.t ->
  ?on_complete:(at:Time.t -> latency:Time.t -> unit) ->
  unit ->
  ol
(** Launch [conns] request connections at [rate] arrivals per second —
    evenly spaced, or exponentially with [~poisson:true] drawn from a
    dedicated RNG stream seeded by [seed] (default 1), so the arrival
    pattern is a pure function of the parameters.  A request that has not
    completed [timeout] (default 10 s) after its connection established is
    aborted and counted as an error — necessary under fail-stop, where a
    fully-ACKed request to a silently dead primary would otherwise block
    its reader forever. *)

val ol_stats : ol -> ol_stats

val ol_peak : ol -> int
(** High-water mark of concurrently open connections. *)

val ol_launched : ol -> int

val ol_done : ol -> unit Ivar.t
(** Filled when every launched connection has completed. *)

(** {1 Client-consistency oracle}

    A verifying client for the chaos campaigns: it computes the exact byte
    stream the server must produce ([requests] back-to-back HTTP responses
    of [expect_bytes] zero bytes each on one connection) and checks every
    received byte against its absolute stream position — so output that is
    lost after commit, duplicated, or corrupted across a failover is
    flagged as a violation, and an early end of stream as truncation. *)

type oracle = {
  mutable completed : int;  (** responses fully verified *)
  requests : int;
  mutable violations : string list;
      (** prefix-consistency violations (corrupted, duplicated or
          misaligned bytes), newest first *)
  mutable truncated : bool;
      (** the stream ended before all responses arrived — excusable only
          by a total outage *)
  oracle_done : unit Ivar.t;
  mutable bytes_verified : int;
  mutable o_shed : int;
      (** explicit zero-body 503 sheds observed and retried (only under
          [allow_shed]) *)
  o_latency : Metrics.Whist.t;
      (** per verified response, milliseconds, windowed on completion time *)
}

val oracle_ok : oracle -> bool
(** No violations and not truncated. *)

val verified_start :
  Host.t ->
  server:string ->
  port:int ->
  target:string ->
  expect_bytes:int ->
  ?requests:int ->
  ?allow_shed:bool ->
  ?latency_window:Time.t ->
  ?on_complete:(at:Time.t -> latency:Time.t -> unit) ->
  unit ->
  oracle
(** [allow_shed] (default false): treat the admission controller's exact
    zero-body 503 as a clean shed — the oracle retries the same request on
    the same connection instead of flagging a violation, preserving the
    exactly-once check for everything the server does commit to. *)

(** {1 wget} *)

type wget = {
  bytes_received : Metrics.Series.t;  (** per-second byte arrivals *)
  total : int Ivar.t;  (** filled with the byte count when complete *)
}

val wget_start :
  Host.t -> server:string -> port:int -> target:string -> ?bucket:Time.t -> unit -> wget
