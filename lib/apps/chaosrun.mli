(** Workload scenario runner for chaos campaigns.

    Builds one complete simulation per schedule — a replicated server
    cluster (two or three replicas), a client host across the modelled
    1 Gb/s link, the workload application, and a {!Loadgen.verified_start}
    client-consistency oracle — applies the schedule's fault injections and
    link-perturbation windows, runs to quiescence, and judges the run:
    replica-digest comparison and replay-divergence flags decide
    [V_divergence]; the oracle decides [V_client_violation]; a run that
    killed every replica is an [V_outage] (excusing a truncated client
    stream).  Runs are a pure function of the schedule's seed. *)

open Ftsim_sim
open Ftsim_ftlinux

type workload = Fileserver | Mongoose

val workload_of_string : string -> (workload, string) result
val workload_to_string : workload -> string

val run :
  ?on_trace:(Evlog.t -> unit) ->
  ?stats_interval:Time.t ->
  ?mutate:bool ->
  ?det_shard:bool ->
  ?replay_workers:int ->
  ?reprotect:bool ->
  ?regen_delay:Time.t ->
  ?listen_shards:int ->
  ?admission:int ->
  workload:workload ->
  replicas:int ->
  Chaos.schedule ->
  Chaos.outcome
(** [on_trace] receives the run's event log after the verdict is reached
    (used to dump the minimal repro's trace).  [stats_interval] arms a
    {!Statsdump} printer on each run's engine (stderr, labelled with the
    schedule index).  [mutate] (testing only) makes the secondary skip one
    sync tuple's digest fold, proving the checker detects a seeded
    divergence.  [det_shard] (default true) selects the per-channel
    deterministic-section core; [false] restores the namespace-global total
    order.  [replay_workers] (default 1) sizes the backups' replay-executor
    pools (see {!Cluster.config}).

    [reprotect] (default false; two replicas only — raises with three)
    turns on {!Cluster} live re-protection with a [regen_delay] dwell
    (default 50 ms): injections then resolve their target partition {e at
    fire time} through the lifecycle API — roles move across failovers and
    epoch switches, and a fault landing on an already-halted target is a
    no-op — and the run's failover count and outage test come from
    {!Cluster.failover_count} and {!Replica_set.all_halted}.  Pair with
    {!Chaos.derive_multi} schedules to exercise kill → regenerate cycles
    of arbitrary length.

    [listen_shards] (default 1) runs the workload server on a
    {!Ftsim_netstack.Tcp.listen_group} of that many accept-queue shards;
    [admission] arms its {!Admission} controller with the given in-flight
    budget and the oracle's [allow_shed] retry path.  The oracle is a
    single sequential connection, so any admission limit admits it — the
    knobs stress the replicated accept/shed machinery under chaos without
    weakening the exactly-once check.

    Every run monitors replication health with a quiet {!Lagmon} (gauges
    and verdicts update, nothing reaches the Evlog — repro traces stay
    byte-identical to monitor-off runs); the worst verdict label lands in
    the outcome's [o_lag]. *)
