open Ftsim_netstack
open Ftsim_ftlinux

(* {1 Memory model}

   Calibration anchors (96 GiB RAM, multiplier 180): user 62.4 GiB (65 %),
   slab such that Ignored totals ~15 % with base kernel + page tables,
   page cache constant (memcached barely uses it). *)

type footprint = { user_bytes : int; slab_bytes : int; page_cache_bytes : int }

let mib n = n * 1024 * 1024

let footprint ~multiplier =
  if multiplier < 0 then invalid_arg "Memcached.footprint";
  {
    user_bytes = multiplier * mib 347;
    slab_bytes = mib 64 + (multiplier * mib 68);
    page_cache_bytes = mib 2048;
  }

let apply_load layout ~multiplier =
  let fp = footprint ~multiplier in
  Ftsim_kernel.Memlayout.alloc_slab layout fp.slab_bytes;
  Ftsim_kernel.Memlayout.alloc_page_cache layout fp.page_cache_bytes;
  Ftsim_kernel.Memlayout.alloc_user layout fp.user_bytes

(* {1 Key-value server} *)

type params = {
  port : int;
  worker_threads : int;
  lock_stripes : int;
  listen_shards : int;
  accept_backlog : int option;
  overflow : Tcp.overflow;
  admission : int option;
}

let default_params =
  {
    port = 11211;
    worker_threads = 8;
    lock_stripes = 1;
    listen_shards = 1;
    accept_backlog = None;
    overflow = `Drop;
    admission = None;
  }

let server ?(params = default_params) ?(on_op = fun _ -> ()) (api : Api.t) =
  let pt = api.Api.pt in
  (* Real memcached stripes its hash table's bucket locks; a stripe count of
     1 is the old single global store lock.  Each stripe's mutex is its own
     replicated sync object, so under the sharded det core operations on
     distinct stripes stream on distinct channels.  [Hashtbl.hash] is
     deterministic, so both replicas agree on every key's stripe. *)
  let stripes = max 1 params.lock_stripes in
  let store : (string, string) Hashtbl.t array =
    Array.init stripes (fun _ -> Hashtbl.create 1024)
  in
  let locks =
    Array.init stripes (fun _ -> Ftsim_kernel.Pthread.mutex_create pt)
  in
  let stripe key = Hashtbl.hash key mod stripes in
  let q : Api.sock Workqueue.t = Workqueue.create pt ~capacity:256 in
  let adm =
    Option.map
      (fun limit -> Admission.create api ~name:"memcached" ~limit ())
      params.admission
  in
  let handle sock =
    (* Accumulate bytes; the protocol is small-string based, so
       materializing is fine. *)
    let buf = Buffer.create 256 in
    let eof = ref false in
    let refill () =
      match api.Api.net.recv sock ~max:65536 with
      | Error (`Eof | `Reset | `Badfd) -> eof := true
      | Ok cs -> Buffer.add_string buf (Payload.concat_to_string cs)
    in
    let take_line () =
      let rec find () =
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | Some i ->
            let line = String.sub s 0 i in
            Buffer.clear buf;
            Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
            let line =
              if String.length line > 0 && line.[String.length line - 1] = '\r'
              then String.sub line 0 (String.length line - 1)
              else line
            in
            Some line
        | None ->
            if !eof then None
            else begin
              refill ();
              find ()
            end
      in
      find ()
    in
    let take_exact n =
      let rec wait () =
        if Buffer.length buf < n then
          if !eof then None
          else begin
            refill ();
            wait ()
          end
        else begin
          let s = Buffer.contents buf in
          let v = String.sub s 0 n in
          Buffer.clear buf;
          Buffer.add_string buf (String.sub s n (String.length s - n));
          Some v
        end
      in
      wait ()
    in
    let reply s = ignore (api.Api.net.send sock (Payload.of_string s)) in
    let rec loop () =
      match take_line () with
      | None -> ()
      | Some line -> (
          match String.split_on_char ' ' line with
          | [ "get"; key ] ->
              let i = stripe key in
              Ftsim_kernel.Pthread.mutex_lock pt locks.(i);
              let v = Hashtbl.find_opt store.(i) key in
              Ftsim_kernel.Pthread.mutex_unlock pt locks.(i);
              (match v with
              | Some v ->
                  reply (Printf.sprintf "VALUE %d\r\n" (String.length v));
                  reply v
              | None -> reply "MISS\r\n");
              on_op "get";
              loop ()
          | [ "set"; key; nbytes ] -> (
              match int_of_string_opt nbytes with
              | None ->
                  reply "ERROR\r\n";
                  loop ()
              | Some n -> (
                  match take_exact n with
                  | None -> ()
                  | Some v ->
                      let i = stripe key in
                      Ftsim_kernel.Pthread.mutex_lock pt locks.(i);
                      Hashtbl.replace store.(i) key v;
                      Ftsim_kernel.Pthread.mutex_unlock pt locks.(i);
                      reply "STORED\r\n";
                      on_op "set";
                      loop ()))
          | [ "quit" ] -> ()
          | _ ->
              reply "ERROR\r\n";
              loop ())
    in
    loop ();
    api.Api.net.close sock
  in
  let handle sock =
    (* Connections are the unit of admitted work: a saturated cache answers
       BUSY and closes rather than queueing the session. *)
    match adm with
    | None -> handle sock
    | Some a ->
        if Admission.try_admit a then
          Fun.protect ~finally:(fun () -> Admission.release a) (fun () ->
              handle sock)
        else begin
          ignore (api.Api.net.send sock (Payload.of_string "BUSY\r\n"));
          api.Api.net.close sock
        end
  in
  let _workers =
    List.init params.worker_threads (fun w ->
        api.Api.thread.spawn
          (Printf.sprintf "memcached-worker-%d" w)
          (fun () ->
            let rec loop () =
              match Workqueue.pop pt q with
              | None -> ()
              | Some sock ->
                  handle sock;
                  loop ()
            in
            loop ()))
  in
  let accept_from listener =
    let rec loop () =
      match api.Api.net.accept listener with
      | Error _ -> ()
      | Ok sock ->
          Workqueue.push pt q sock;
          loop ()
    in
    loop ()
  in
  if params.listen_shards <= 1 && params.accept_backlog = None then
    (* pre-listener-group shape, byte-identical when the new knobs are off *)
    accept_from (api.Api.net.listen ~port:params.port)
  else begin
    let listeners =
      api.Api.net.listen_group ~port:params.port
        ~shards:(max 1 params.listen_shards) ~backlog:params.accept_backlog
        ~overflow:params.overflow
    in
    match listeners with
    | [] -> assert false
    | l0 :: rest ->
        let acceptors =
          List.mapi
            (fun i l ->
              api.Api.thread.spawn
                (Printf.sprintf "memcached-acceptor-%d" (i + 1))
                (fun () -> accept_from l))
            rest
        in
        accept_from l0;
        List.iter api.Api.thread.join acceptors
  end
