(** The in-house HTTP file server of the failover experiment (paper §4.4):
    a light-weight server that listens for connections and streams a large
    file to each, chosen by the paper precisely because its overheads are
    easy to break down. *)

open Ftsim_netstack
open Ftsim_ftlinux

type params = {
  port : int;
  file_bytes : int;  (** paper: 10 GB *)
  chunk_bytes : int;  (** application write size *)
  read_ns_per_byte : int;  (** file-system read cost *)
  listen_shards : int;
      (** accept-queue shards ({!Tcp.listen_group}); 1 = the classic
          single listener on the app-main thread *)
  accept_backlog : int option;  (** per-shard backlog bound; [None] = unbounded *)
  overflow : Tcp.overflow;  (** SYN fate when a shard's backlog is full *)
  admission : int option;
      (** concurrent-transfer budget ({!Admission}); saturated requests get
          a zero-body HTTP 503 and a close; [None] = admission off *)
}

val default_params : params

val run : ?params:params -> ?on_bytes_sent:(int -> unit) -> Api.app
(** Serve file downloads forever, one connection-handling thread per
    accepted connection.  [on_bytes_sent n] fires per application write. *)
