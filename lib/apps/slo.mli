(** SLO reporter: tail latency through replica death.

    Runs a replicated {!Mongoose} under closed-loop ApacheBench load, injects
    a primary fail-stop, and splits per-request latency into pre-fault /
    failover-window / post-recovery phases.  The failover window's bounds are
    the pinned [failover.*] Evlog spans (begin of [failover.detect] to end of
    [failover.golive]), and completions are classified post-hoc by exact time
    comparison against those bounds — not by histogram-window granularity. *)

open Ftsim_sim
open Ftsim_ftlinux

val default_config : Cluster.config
(** Small topology, 5 ms heart-beats / 25 ms timeout, 200 ms driver reload,
    replication-health monitor on — one run settles in a few simulated
    seconds. *)

type report = {
  fail_at : Time.t;
  window : (Time.t * Time.t) option;
      (** failover window from the pinned spans; [None] if no failover *)
  span_bounds_ok : bool;
      (** span-derived bounds equal {!Cluster.primary_halted_at} /
          {!Cluster.failover_completed_at} *)
  pre : Metrics.Hist.t;  (** latency (ms) of completions before the window *)
  fo : Metrics.Hist.t;  (** completions inside the window (may be empty:
          the server is down for most of it) *)
  post : Metrics.Hist.t;  (** completions after the window *)
  completions : (Time.t * Time.t) list;
      (** every successful request as [(done_at, latency)], oldest first *)
  completed : int;
  errors : int;
  latency_w : Metrics.Whist.t;  (** the live windowed view of the same data *)
  lag_verdict : Lagmon.verdict option;
  lag_worst : Lagmon.verdict option;
}

val run :
  Engine.t ->
  ?config:Cluster.config ->
  ?concurrency:int ->
  ?page_bytes:int ->
  ?cpu_per_request:Time.t ->
  ?listen_shards:int ->
  ?admission:int ->
  ?warmup:Time.t ->
  ?fail_at:Time.t ->
  ?run_for:Time.t ->
  unit ->
  report
(** Boot the cluster, warm up until [warmup] (default 200 ms), offer load
    with [concurrency] (default 16) workers, fail the primary at [fail_at]
    (default 600 ms), run until [run_for] (default 2.4 s), then classify.
    [listen_shards] / [admission] configure the server's accept-queue
    sharding and in-flight budget ({!Mongoose.params}).  Deterministic for
    a fixed engine seed. *)

val print_table : report -> unit
(** The phase-split p50/p90/p99/p999 table, window bounds first. *)
