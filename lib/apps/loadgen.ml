open Ftsim_sim
open Ftsim_netstack

type ab_stats = {
  completed : Metrics.Counter.t;
  errors : Metrics.Counter.t;
  latency : Metrics.Hist.t;
  latency_w : Metrics.Whist.t;  (* same samples, windowed on completion time *)
  completions : Metrics.Series.t;
}

type ab = { stats : ab_stats; mutable stopped : bool }

let one_request host ~server ~port ~target =
  let stack = Host.stack host in
  let c = Tcp.connect stack ~host:server ~port in
  Tcp.send c (Payload.of_string (Http.request ~meth:"GET" ~target ()));
  let reader = Http.reader c in
  let result =
    match Http.read_headers reader with
    | None -> Error "no response"
    | Some hdr -> (
        match Http.content_length hdr with
        | None -> Error "no content length"
        | Some len ->
            let got = Http.skip_body reader len in
            if got = len then Ok () else Error "truncated body")
  in
  Tcp.close c;
  (* Drain to let the FIN exchange finish promptly. *)
  result

let ab_start host ~server ~port ~target ~concurrency ?response_bytes_hint
    ?(latency_window = Time.ms 100) ?on_complete () =
  ignore response_bytes_hint;
  let eng = Engine.engine_of_proc (Host.spawn host "ab-probe" (fun () -> ())) in
  let t =
    {
      stats =
        {
          completed = Metrics.Counter.create ();
          errors = Metrics.Counter.create ();
          latency = Metrics.Hist.create ();
          latency_w = Metrics.Whist.create ~width:latency_window ();
          completions = Metrics.Series.create ~bucket:(Time.sec 1);
        };
      stopped = false;
    }
  in
  for w = 1 to concurrency do
    ignore
      (Host.spawn host
         (Printf.sprintf "ab-worker-%d" w)
         (fun () ->
           let rec loop () =
             if not t.stopped then begin
               let t0 = Engine.now eng in
               (* A reset mid-request (e.g. the server dying under us) is an
                  error, not a worker death: the closed loop keeps offering
                  load through a failover. *)
               (match
                  try one_request host ~server ~port ~target
                  with Tcp.Connection_closed -> Error "connection closed"
                with
               | Ok () ->
                   let now = Engine.now eng in
                   let dt = now - t0 in
                   Metrics.Counter.incr t.stats.completed;
                   Metrics.Hist.record t.stats.latency (Time.to_sec_f dt);
                   Metrics.Whist.record t.stats.latency_w ~at:now
                     (Time.to_ms_f dt);
                   Metrics.Series.add t.stats.completions ~at:now 1.0;
                   (match on_complete with
                   | Some f -> f ~at:now ~latency:dt
                   | None -> ())
               | Error _ -> Metrics.Counter.incr t.stats.errors);
               loop ()
             end
           in
           loop ()))
  done;
  t

let ab_stats t = t.stats

let ab_stop t = t.stopped <- true

(* {1 Open-loop generator}

   The C10K client: arrivals come from a clock, not from completions, so a
   slow server cannot slow the offered load down — exactly the regime where
   accept-queue sharding and admission control matter.  Each arrival is its
   own short-lived connection/thread; tens of thousands can be in flight. *)

type ol_stats = {
  ol_ok : Metrics.Counter.t;
  ol_shed : Metrics.Counter.t;
  ol_errors : Metrics.Counter.t;
  ol_latency_w : Metrics.Whist.t;
}

type ol = {
  ol_stats : ol_stats;
  mutable ol_launched : int;
  mutable ol_in_flight : int;
  mutable ol_peak : int;
  ol_done : unit Ivar.t;
}

let ol_peak t = t.ol_peak
let ol_launched t = t.ol_launched

(* One open-loop request, classified: a zero-body 503 is an explicit load
   shed (the admission controller answering), anything else short of a
   verified full-length 200 is an error.

   The watchdog matters under fail-stop: a connection whose request was
   fully ACKed by the old primary has nothing left to retransmit when the
   host silently dies, so without a deadline its read would block forever.
   The timer aborts the connection, the blocked read raises, and the
   request classifies as an error like any other client-visible failure. *)
let ol_one_request host ~server ~port ~target ~timeout =
  let stack = Host.stack host in
  match Tcp.connect stack ~host:server ~port with
  | exception Tcp.Connection_closed -> `Error
  | c ->
      let eng = Engine.engine_of_proc (Engine.self ()) in
      let watchdog =
        Engine.timer eng ~at:(Engine.now eng + timeout) (fun () -> Tcp.abort c)
      in
      let result =
        try
          Tcp.send c (Payload.of_string (Http.request ~meth:"GET" ~target ()));
          let reader =
            Http.reader_fn (fun max ->
                match Tcp.recv c ~max with
                | cs -> cs
                | exception Tcp.Connection_closed -> [])
          in
          match Http.read_headers reader with
          | None -> `Error
          | Some hdr -> (
              match Http.status_code hdr with
              | Some 503 -> `Shed
              | Some 200 -> (
                  match Http.content_length hdr with
                  | None -> `Error
                  | Some len ->
                      if Http.skip_body reader len = len then `Ok else `Error)
              | _ -> `Error)
        with Tcp.Connection_closed -> `Error
      in
      Engine.cancel watchdog;
      (try Tcp.close c with Tcp.Connection_closed -> ());
      result

let ol_start host ~server ~port ~target ~rate ~conns ?(poisson = false)
    ?(seed = 1) ?(latency_window = Time.ms 100) ?(timeout = Time.sec 10)
    ?on_complete () =
  if rate <= 0.0 then invalid_arg "Loadgen.ol_start: rate must be positive";
  if conns < 0 then invalid_arg "Loadgen.ol_start: conns must be >= 0";
  let t =
    {
      ol_stats =
        {
          ol_ok = Metrics.Counter.create ();
          ol_shed = Metrics.Counter.create ();
          ol_errors = Metrics.Counter.create ();
          ol_latency_w = Metrics.Whist.create ~width:latency_window ();
        };
      ol_launched = 0;
      ol_in_flight = 0;
      ol_peak = 0;
      ol_done = Ivar.create ();
    }
  in
  ignore
    (Host.spawn host "ol-arrivals" (fun () ->
         let eng = Engine.engine_of_proc (Engine.self ()) in
         (* Own RNG stream: the arrival process depends only on [seed], not
            on whatever else draws from the engine's generator. *)
         let rng = Random.State.make [| seed; conns; int_of_float rate |] in
         let mean_ns = 1e9 /. rate in
         let finished = ref 0 in
         for i = 1 to conns do
           let gap_ns =
             if poisson then
               (* exponential inter-arrival; clamp u away from 0 *)
               let u = max 1e-12 (Random.State.float rng 1.0) in
               mean_ns *. -.log u
             else mean_ns
           in
           Engine.sleep (Time.ns (max 1 (int_of_float gap_ns)));
           t.ol_launched <- t.ol_launched + 1;
           t.ol_in_flight <- t.ol_in_flight + 1;
           if t.ol_in_flight > t.ol_peak then t.ol_peak <- t.ol_in_flight;
           ignore
             (Host.spawn host
                (Printf.sprintf "ol-req-%d" i)
                (fun () ->
                  let t0 = Engine.now eng in
                  (match ol_one_request host ~server ~port ~target ~timeout with
                  | `Ok ->
                      let now = Engine.now eng in
                      let dt = now - t0 in
                      Metrics.Counter.incr t.ol_stats.ol_ok;
                      Metrics.Whist.record t.ol_stats.ol_latency_w ~at:now
                        (Time.to_ms_f dt);
                      (match on_complete with
                      | Some f -> f ~at:now ~latency:dt
                      | None -> ())
                  | `Shed -> Metrics.Counter.incr t.ol_stats.ol_shed
                  | `Error -> Metrics.Counter.incr t.ol_stats.ol_errors);
                  t.ol_in_flight <- t.ol_in_flight - 1;
                  incr finished;
                  if !finished = conns then Ivar.fill t.ol_done ()))
         done;
         if conns = 0 then Ivar.fill t.ol_done ()));
  t

let ol_stats t = t.ol_stats
let ol_done t = t.ol_done

(* {1 Client-consistency oracle}

   A verifying client: it knows the exact byte stream the server must
   produce (header + zero body per request, back to back on one
   connection), tracks its absolute position in that stream, and checks
   every received byte against it.  Any lost-committed or duplicated
   output across a failover misaligns the stream and is reported as a
   violation; an orderly end of stream before completion is reported as
   truncation (the runner decides whether a total outage excuses it). *)

type oracle = {
  mutable completed : int;  (** responses fully verified *)
  requests : int;
  mutable violations : string list;  (** newest first *)
  mutable truncated : bool;  (** stream ended before all responses *)
  oracle_done : unit Ivar.t;  (** filled when the client exits *)
  mutable bytes_verified : int;
  mutable o_shed : int;  (** explicit 503 sheds observed (and retried) *)
  o_latency : Metrics.Whist.t;  (* per verified response, ms, windowed *)
}

let oracle_ok o = o.violations = [] && not o.truncated

let verified_start host ~server ~port ~target ~expect_bytes
    ?(requests = 1) ?(allow_shed = false) ?(latency_window = Time.ms 100)
    ?on_complete () =
  let o =
    {
      completed = 0;
      requests;
      violations = [];
      truncated = false;
      oracle_done = Ivar.create ();
      bytes_verified = 0;
      o_shed = 0;
      o_latency = Metrics.Whist.create ~width:latency_window ();
    }
  in
  let violate fmt = Printf.ksprintf (fun s -> o.violations <- s :: o.violations) fmt in
  ignore
    (Host.spawn host "oracle-client" (fun () ->
         let eng = Engine.engine_of_proc (Engine.self ()) in
         let stack = Host.stack host in
         let c = Tcp.connect stack ~host:server ~port in
         let reader =
           Http.reader_fn (fun max ->
               match Tcp.recv c ~max with
               | cs -> cs
               | exception Tcp.Connection_closed -> [])
         in
         let expected_hdr =
           (* what read_headers returns: the block minus its \r\n\r\n *)
           let h = Http.response_header ~content_length:expect_bytes () in
           String.sub h 0 (String.length h - 4)
         in
         let expected_shed_hdr =
           (* the admission controller's exact zero-body 503; under
              [allow_shed] it is a clean retry event, not a violation —
              the stream position stays exact either way *)
           let h =
             Http.response_header ~status:503 ~reason:"Service Unavailable"
               ~content_length:0 ()
           in
           String.sub h 0 (String.length h - 4)
         in
         let expected_body_hash =
           Payload.stream_hash 0 [ Payload.zeroes expect_bytes ]
         in
         (try
            let r = ref 0 in
            let ok = ref true in
            while !ok && !r < requests do
              let t0 = Engine.now eng in
              Tcp.send c (Payload.of_string (Http.request ~meth:"GET" ~target ()));
              (match Http.read_headers reader with
              | None ->
                  o.truncated <- true;
                  ok := false
              | Some hdr when allow_shed && hdr = expected_shed_hdr ->
                  (* Shed: same request number retried on the same
                     connection; exactly-once accounting is untouched. *)
                  o.o_shed <- o.o_shed + 1
              | Some hdr when hdr <> expected_hdr ->
                  violate "request %d: response header mismatch: %S" !r hdr;
                  ok := false
              | Some _ ->
                  (* Byte-exact body check via the rolling content hash:
                     position-sensitive, so a gap or duplication anywhere
                     in the stream changes it. *)
                  let received = ref 0 in
                  let h = ref 0 in
                  let eof = ref false in
                  while (not !eof) && !received < expect_bytes do
                    let want = min (256 * 1024) (expect_bytes - !received) in
                    match Http.read_body reader want with
                    | [] -> eof := true
                    | cs ->
                        h := Payload.stream_hash !h cs;
                        received := !received + Payload.total_len cs
                  done;
                  if !received < expect_bytes then begin
                    o.truncated <- true;
                    ok := false
                  end
                  else if !h <> expected_body_hash then begin
                    violate "request %d: body content mismatch" !r;
                    ok := false
                  end
                  else begin
                    o.bytes_verified <- o.bytes_verified + !received;
                    o.completed <- o.completed + 1;
                    incr r;
                    let now = Engine.now eng in
                    let dt = now - t0 in
                    Metrics.Whist.record o.o_latency ~at:now (Time.to_ms_f dt);
                    match on_complete with
                    | Some f -> f ~at:now ~latency:dt
                    | None -> ()
                  end)
            done
          with Tcp.Connection_closed -> o.truncated <- true);
         (try Tcp.close c with Tcp.Connection_closed -> ());
         Ivar.fill o.oracle_done ()));
  o

type wget = { bytes_received : Metrics.Series.t; total : int Ivar.t }

let wget_start host ~server ~port ~target ?(bucket = Time.sec 1) () =
  let w = { bytes_received = Metrics.Series.create ~bucket; total = Ivar.create () } in
  ignore
    (Host.spawn host "wget" (fun () ->
         let eng =
           Ftsim_sim.Engine.engine_of_proc (Ftsim_sim.Engine.self ())
         in
         let stack = Host.stack host in
         let c = Tcp.connect stack ~host:server ~port in
         Tcp.send c (Payload.of_string (Http.request ~meth:"GET" ~target ()));
         let reader = Http.reader c in
         match Http.read_headers reader with
         | None -> Ivar.fill w.total 0
         | Some hdr ->
             let len = Option.value ~default:0 (Http.content_length hdr) in
             let received = ref 0 in
             let rec drain () =
               if !received < len then begin
                 let want = min (256 * 1024) (len - !received) in
                 match Http.read_body reader want with
                 | [] -> () (* premature end *)
                 | cs ->
                     let n = Payload.total_len cs in
                     received := !received + n;
                     Metrics.Series.add w.bytes_received ~at:(Engine.now eng)
                       (float_of_int n);
                     drain ()
               end
             in
             drain ();
             Tcp.close c;
             Ivar.fill w.total !received));
  w
