open Ftsim_sim
open Ftsim_hw
open Ftsim_netstack
open Ftsim_ftlinux

(* SLO reporter: a replicated Mongoose served to closed-loop ApacheBench
   workers through an injected primary fail-stop, with per-request latency
   split into pre-fault / failover-window / post-recovery phases.

   The failover window is not guessed from histogram windows: its bounds
   come from the pinned failover.* Evlog spans (detect begin .. golive
   end), and completions are classified post-hoc by pure time comparison
   against those bounds — so the phase split is exact, to the nanosecond
   the spans record. *)

let server_ip = "10.0.0.1"
let client_ip = "10.0.0.9"

let default_config =
  {
    Cluster.default_config with
    topology = Topology.small;
    hb_period = Time.ms 5;
    hb_timeout = Time.ms 25;
    driver_load_time = Time.ms 200;
    lagmon = Some Lagmon.default_config;
  }

type report = {
  fail_at : Time.t;
  window : (Time.t * Time.t) option;
      (* failover window: begin of the pinned "failover.detect" span to end
         of the pinned "failover.golive" span; None if the fault never
         triggered a failover *)
  span_bounds_ok : bool;
      (* the span-derived bounds equal the cluster's own halt/completion
         timestamps *)
  pre : Metrics.Hist.t;  (* completions with done_at < window lo, ms *)
  fo : Metrics.Hist.t;  (* completions inside [lo, hi], ms *)
  post : Metrics.Hist.t;  (* completions with done_at > window hi, ms *)
  completions : (Time.t * Time.t) list;
      (* every successful request as (done_at, latency), oldest first *)
  completed : int;
  errors : int;
  latency_w : Metrics.Whist.t;  (* the live windowed view of the same data *)
  lag_verdict : Lagmon.verdict option;  (* final, when the monitor ran *)
  lag_worst : Lagmon.verdict option;
}

let phase_of ~window ~at =
  match window with
  | None -> `Pre
  | Some (lo, hi) -> if at < lo then `Pre else if at > hi then `Post else `Fo

let run eng ?(config = default_config) ?(concurrency = 16)
    ?(page_bytes = 10 * 1024) ?(cpu_per_request = Time.ms 1)
    ?(listen_shards = 1) ?admission ?(warmup = Time.ms 200)
    ?(fail_at = Time.ms 600) ?(run_for = Time.ms 2400) () =
  if fail_at <= warmup then invalid_arg "Slo.run: fail_at must be after warmup";
  if run_for <= fail_at then invalid_arg "Slo.run: run_for must be after fail_at";
  let link =
    Link.create eng ~bandwidth_bps:1_000_000_000 ~latency:(Time.us 100)
      ~seed_split:(Engine.prng eng) ()
  in
  let app api =
    Mongoose.run
      ~params:
        {
          Mongoose.default_params with
          Mongoose.page_bytes;
          cpu_per_request;
          listen_shards;
          admission;
        }
      api
  in
  let cluster =
    Cluster.create eng ~config ~link:(Link.endpoint_a link) ~app ()
  in
  Cluster.kill cluster ~role:Replica_set.Primary ~at:fail_at;
  let client = Host.create eng ~ip:client_ip (Link.endpoint_b link) in
  (* Let the server boot and listen before offering load. *)
  Engine.run ~until:warmup eng;
  let completions = ref [] in
  let ab =
    Loadgen.ab_start client ~server:server_ip ~port:80 ~target:"/"
      ~concurrency
      ~on_complete:(fun ~at ~latency ->
        completions := (at, latency) :: !completions)
      ()
  in
  Engine.run ~until:run_for eng;
  Loadgen.ab_stop ab;
  Cluster.shutdown cluster;
  (* Drain: let in-flight requests and timers settle so the engine ends
     quiet (the stopper pattern of the bench harness). *)
  Engine.run ~until:(run_for + Time.ms 100) eng;
  let stats = Loadgen.ab_stats ab in
  let evs = Evlog.events (Engine.evlog eng) in
  let window =
    match
      ( Evlog.Query.span_of ~comp:"ft.cluster" ~name:"failover.detect" evs,
        Evlog.Query.span_of ~comp:"ft.cluster" ~name:"failover.golive" evs )
    with
    | Some (detect_begin, _), Some (_, golive_end) ->
        Some (detect_begin, golive_end)
    | _ -> None
  in
  let span_bounds_ok =
    match
      ( window,
        Cluster.primary_halted_at cluster,
        Cluster.failover_completed_at cluster )
    with
    | Some (lo, hi), Some halted, Some completed -> lo = halted && hi = completed
    | None, None, None -> true
    | _ -> false
  in
  let pre = Metrics.Hist.create ()
  and fo = Metrics.Hist.create ()
  and post = Metrics.Hist.create () in
  let completions = List.rev !completions in
  List.iter
    (fun (at, latency) ->
      let h =
        match phase_of ~window ~at with `Pre -> pre | `Fo -> fo | `Post -> post
      in
      Metrics.Hist.record h (Time.to_ms_f latency))
    completions;
  let lagmon = Cluster.lagmon cluster in
  {
    fail_at;
    window;
    span_bounds_ok;
    pre;
    fo;
    post;
    completions;
    completed = Metrics.Counter.value stats.Loadgen.completed;
    errors = Metrics.Counter.value stats.Loadgen.errors;
    latency_w = stats.Loadgen.latency_w;
    lag_verdict = Option.map Lagmon.verdict lagmon;
    lag_worst = Option.map Lagmon.worst lagmon;
  }

(* The phase-split percentile table `ftsim slo` prints. *)
let print_table r =
  let cell h q =
    if Metrics.Hist.count h = 0 then "-"
    else Printf.sprintf "%.2f" (Metrics.Hist.quantile h q)
  in
  let row label h =
    Printf.printf "%-16s %8d %10s %10s %10s %10s\n" label (Metrics.Hist.count h)
      (cell h 0.5) (cell h 0.9) (cell h 0.99) (cell h 0.999)
  in
  (match r.window with
  | Some (lo, hi) ->
      Printf.printf
        "failover window: %.3f ms .. %.3f ms (%.3f ms, from pinned \
         failover.* spans%s)\n"
        (Time.to_ms_f lo) (Time.to_ms_f hi)
        (Time.to_ms_f (hi - lo))
        (if r.span_bounds_ok then ", bounds verified" else
           ", BOUNDS MISMATCH vs cluster timestamps")
  | None -> Printf.printf "failover window: none (fault did not trigger)\n");
  Printf.printf "%-16s %8s %10s %10s %10s %10s  (latency, ms)\n" "phase" "reqs"
    "p50" "p90" "p99" "p999";
  row "pre-fault" r.pre;
  row "failover" r.fo;
  row "post-recovery" r.post;
  Printf.printf "completed %d, errors %d" r.completed r.errors;
  (match (r.lag_verdict, r.lag_worst) with
  | Some v, Some w ->
      Printf.printf "; replication health: %s (worst: %s)"
        (Lagmon.verdict_label v) (Lagmon.verdict_label w)
  | _ -> ());
  print_newline ()
