open Ftsim_sim
open Ftsim_netstack
open Ftsim_ftlinux

type params = {
  port : int;
  workers : int;
  page_bytes : int;
  cpu_per_request : Time.t;
  accept_cost : Time.t;
  queue_capacity : int;
  listen_shards : int;
  accept_backlog : int option;
  overflow : Tcp.overflow;
  admission : int option;
}

let default_params =
  {
    port = 80;
    workers = 32;
    page_bytes = 10 * 1024;
    cpu_per_request = 0;
    accept_cost = Time.us 250;
    queue_capacity = 512;
    listen_shards = 1;
    accept_backlog = None;
    overflow = `Drop;
    admission = None;
  }

let shed_header =
  Http.response_header ~status:503 ~reason:"Service Unavailable"
    ~content_length:0 ()

let handle_conn (api : Api.t) p ~adm ~on_request sock =
  let reader =
    Http.reader_fn (fun max ->
        match api.Api.net.recv sock ~max with Ok cs -> cs | Error _ -> [])
  in
  let release () = match adm with Some a -> Admission.release a | None -> () in
  let rec serve_requests () =
    match Http.read_headers reader with
    | None -> ()
    | Some _request ->
        let admitted =
          match adm with None -> true | Some a -> Admission.try_admit a
        in
        let outcome =
          if not admitted then
            (* Load shed: a well-formed zero-body 503, so the client's
               stream position stays exact and it can retry on the same
               connection. *)
            match api.Api.net.send sock (Payload.of_string shed_header) with
            | Error _ -> `Stop
            | Ok () -> `Continue
          else
            Fun.protect ~finally:release (fun () ->
                if p.cpu_per_request > 0 then
                  api.Api.thread.compute p.cpu_per_request;
                match
                  api.Api.net.send sock
                    (Payload.of_string
                       (Http.response_header ~content_length:p.page_bytes ()))
                with
                | Error _ -> `Stop
                | Ok () -> (
                    match api.Api.net.send sock (Payload.zeroes p.page_bytes) with
                    | Error _ -> `Stop
                    | Ok () ->
                        on_request ();
                        `Continue))
        in
        (match outcome with `Stop -> () | `Continue -> serve_requests ())
  in
  serve_requests ();
  api.Api.net.close sock

let run ?(params = default_params) ?(on_request = fun () -> ()) (api : Api.t) =
  let pt = api.Api.pt in
  let p = params in
  let q : Api.sock Workqueue.t = Workqueue.create pt ~capacity:p.queue_capacity in
  let adm =
    Option.map
      (fun limit -> Admission.create api ~name:"mongoose" ~limit ())
      p.admission
  in
  let _workers =
    List.init p.workers (fun w ->
        api.Api.thread.spawn
          (Printf.sprintf "mongoose-worker-%d" w)
          (fun () ->
            let rec loop () =
              match Workqueue.pop pt q with
              | None -> ()
              | Some sock ->
                  handle_conn api p ~adm ~on_request sock;
                  loop ()
            in
            loop ()))
  in
  let accept_from listener =
    let rec loop () =
      match api.Api.net.accept listener with
      | Error _ -> ()
      | Ok sock ->
          if p.accept_cost > 0 then api.Api.thread.compute p.accept_cost;
          Workqueue.push pt q sock;
          loop ()
    in
    loop ()
  in
  if p.listen_shards <= 1 && p.accept_backlog = None then
    (* The pre-listener-group shape, kept exactly: one [listen] call and the
       accept loop on the app-main thread, so shards=1 runs byte-identical
       to the single-listener era. *)
    accept_from (api.Api.net.listen ~port:p.port)
  else begin
    let listeners =
      api.Api.net.listen_group ~port:p.port ~shards:(max 1 p.listen_shards)
        ~backlog:p.accept_backlog ~overflow:p.overflow
    in
    match listeners with
    | [] -> assert false
    | l0 :: rest ->
        (* One acceptor thread per extra shard; the app-main thread owns
           shard 0.  Each shard's accepts land in its own acceptor's
           per-thread syscall stream, which is what lets SYN-hash shard
           assignment replicate without any new wire records. *)
        let acceptors =
          List.mapi
            (fun i l ->
              api.Api.thread.spawn
                (Printf.sprintf "mongoose-acceptor-%d" (i + 1))
                (fun () -> accept_from l))
            rest
        in
        accept_from l0;
        List.iter api.Api.thread.join acceptors
  end
