open Ftsim_sim
open Ftsim_netstack
open Ftsim_ftlinux

type params = {
  port : int;
  workers : int;
  page_bytes : int;
  cpu_per_request : Time.t;
  accept_cost : Time.t;
  queue_capacity : int;
}

let default_params =
  {
    port = 80;
    workers = 32;
    page_bytes = 10 * 1024;
    cpu_per_request = 0;
    accept_cost = Time.us 250;
    queue_capacity = 512;
  }

let handle_conn (api : Api.t) p ~on_request sock =
  let reader =
    Http.reader_fn (fun max ->
        match api.Api.net.recv sock ~max with Ok cs -> cs | Error _ -> [])
  in
  let rec serve_requests () =
    match Http.read_headers reader with
    | None -> ()
    | Some _request -> (
        if p.cpu_per_request > 0 then api.Api.thread.compute p.cpu_per_request;
        match
          api.Api.net.send sock
            (Payload.of_string (Http.response_header ~content_length:p.page_bytes ()))
        with
        | Error _ -> ()
        | Ok () -> (
            match api.Api.net.send sock (Payload.zeroes p.page_bytes) with
            | Error _ -> ()
            | Ok () ->
                on_request ();
                serve_requests ()))
  in
  serve_requests ();
  api.Api.net.close sock

let run ?(params = default_params) ?(on_request = fun () -> ()) (api : Api.t) =
  let pt = api.Api.pt in
  let p = params in
  let q : Api.sock Workqueue.t = Workqueue.create pt ~capacity:p.queue_capacity in
  let _workers =
    List.init p.workers (fun w ->
        api.Api.thread.spawn
          (Printf.sprintf "mongoose-worker-%d" w)
          (fun () ->
            let rec loop () =
              match Workqueue.pop pt q with
              | None -> ()
              | Some sock ->
                  handle_conn api p ~on_request sock;
                  loop ()
            in
            loop ()))
  in
  let listener = api.Api.net.listen ~port:p.port in
  let rec accept_loop () =
    let sock = api.Api.net.accept listener in
    if p.accept_cost > 0 then api.Api.thread.compute p.accept_cost;
    Workqueue.push pt q sock;
    accept_loop ()
  in
  accept_loop ()
