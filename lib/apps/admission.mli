(** Admission control: a bounded in-flight work budget for the server apps.

    Saturated servers answer with an explicit load-shed response (HTTP 503,
    memcached [BUSY]) instead of queueing without bound, so overload
    degrades tail latency gracefully rather than collapsing the service.

    Deterministic under replication: the budget lives behind a replicated
    {!Ftsim_kernel.Pthread} mutex, so admit/shed decisions replay in the
    same order on the secondary — the invariant is that a decision is a
    pure function of replicated lock-acquisition order, never of wall-clock
    load observation. *)

open Ftsim_ftlinux

type t

val create : Api.t -> ?name:string -> limit:int -> unit -> t
(** A controller allowing at most [limit] in-flight units of work.
    [name] scopes the [admission.<kernel>.<name>.{admitted,shed}]
    counters. *)

val try_admit : t -> bool
(** Claim a slot: [true] = admitted (caller must {!release}),
    [false] = saturated (caller sheds). *)

val release : t -> unit

val with_admission : t -> shed:(unit -> 'a) -> (unit -> 'a) -> 'a
(** [with_admission t ~shed f] runs [f] inside an admitted slot, or [shed]
    when saturated.  The slot is released even if [f] raises. *)

val limit : t -> int
val admitted : t -> int
val shed : t -> int
