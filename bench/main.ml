(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4).  One subcommand per figure; `all` (the default) runs the
   full evaluation.  Shapes, not absolute numbers, are the reproduction
   target — see EXPERIMENTS.md for the paper-versus-measured record. *)

open Ftsim_sim
open Ftsim_hw
open Ftsim_kernel
open Ftsim_netstack
open Ftsim_ftlinux
open Ftsim_apps

let mib n = n * 1024 * 1024

let hr title =
  Printf.printf "\n==== %s ====\n%!" title

(* Each experiment's engines are recorded at creation so the cross-stack
   metrics registries can be dumped to BENCH_<name>.json when it finishes.
   The dump is a JSON array, one object per engine in creation order; the
   registry serialisation is deterministic, so two same-seed bench runs
   produce byte-identical files. *)
let engines : Engine.t list ref = ref []

(* Base path from --trace-out; each experiment writes its own trace next to
   its BENCH_<name>.json, suffixed with the experiment name so a full run
   does not overwrite itself. *)
let trace_out : string option ref = ref None

let new_engine () =
  let e = Engine.create () in
  engines := e :: !engines;
  e

let trace_path base name =
  let dir = Filename.dirname base and file = Filename.basename base in
  let stem, ext =
    match Filename.chop_suffix_opt file ~suffix:".jsonl" with
    | Some s -> (s, ".jsonl")
    | None -> (
        match Filename.chop_suffix_opt file ~suffix:".json" with
        | Some s -> (s, ".json")
        | None -> (file, ".json"))
  in
  Filename.concat dir (Printf.sprintf "%s_%s%s" stem name ext)

let dump_trace name =
  match (!trace_out, !engines) with
  | None, _ | _, [] -> ()
  | Some base, e :: _ ->
      (* [engines] is newest-first; the head is the experiment's most
         recently created (usually only) engine. *)
      let path = trace_path base name in
      let format =
        if Filename.check_suffix path ".jsonl" then `Jsonl else `Chrome
      in
      (try Evlog.write_file (Engine.evlog e) ~format path
       with Sys_error msg -> Printf.eprintf "bench: cannot write trace: %s\n" msg)

let dump_bench name =
  let oc = open_out (Printf.sprintf "BENCH_%s.json" name) in
  output_string oc "[";
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",";
      output_string oc "\n";
      output_string oc
        (String.trim (Metrics.Registry.to_json (Engine.metrics e))))
    (List.rev !engines);
  output_string oc "\n]\n";
  close_out oc

let run_experiment name f quick =
  engines := [];
  f quick;
  dump_bench name;
  dump_trace name

(* Step the engine in 100 ms slices until [stop ()] or the simulated cap,
   so runs do not spin on heart-beat timers after the workload finishes. *)
let drive eng ~cap ~stop =
  let rec loop () =
    if (not (stop ())) && Engine.now eng < cap then begin
      Engine.run ~until:(min cap (Engine.now eng + Time.ms 100)) eng;
      loop ()
    end
  in
  loop ()

let gbit_link eng =
  Link.create eng ~bandwidth_bps:1_000_000_000 ~latency:(Time.us 100) ()

let ft_config ?(mailbox_capacity = Mailbox.default_config.Mailbox.capacity)
    ?(split = `Symmetric) ?(driver_load_time = Time.ms 4950) () =
  {
    Cluster.default_config with
    split;
    driver_load_time;
    mailbox_config =
      { Mailbox.default_config with Mailbox.capacity = mailbox_capacity };
  }

let burst_capacity = 50_000_000
(* Effectively unbounded buffering: the primary streams without ever waiting
   for the secondary — the paper's "peak throughput attainable in a short
   burst". *)

(* ------------------------------------------------------------------ *)
(* Figure 1: physical-memory classification under memcached           *)
(* ------------------------------------------------------------------ *)

let fig1 _quick =
  hr "Figure 1: memory classification, memcached dataset sweep (96 GiB RAM)";
  Printf.printf "%-12s %10s %10s %10s\n" "multiplier" "Ignored%" "Delayed%" "User%";
  let multipliers = [ 3; 30; 60; 90; 120; 150; 180 ] in
  List.iter
    (fun m ->
      let layout = Memlayout.create ~ram_bytes:(96 * 1024 * mib 1) in
      Memcached.apply_load layout ~multiplier:m;
      let i, d, u = Memlayout.fractions layout in
      Printf.printf "%-12s %10.1f %10.1f %10.1f\n"
        (Printf.sprintf "%dx" m) (100. *. i) (100. *. d) (100. *. u))
    multipliers;
  Printf.printf
    "(paper: at 180x ~15%% Ignored / ~20%% Delayed / ~65%% User; Ignored and\n\
    \ User grow with the dataset while Delayed shrinks)\n"

(* ------------------------------------------------------------------ *)
(* Section 2.3: what does a random memory error hit?                   *)
(* ------------------------------------------------------------------ *)

let sec23 _quick =
  hr "Section 2.3: outcome of a random memory error (Monte Carlo, 100k hits)";
  Printf.printf "%-12s %14s %12s %12s
" "multiplier" "kernel-fatal%" "recovered%"
    "app-killed%";
  List.iter
    (fun m ->
      let layout = Memlayout.create ~ram_bytes:(96 * 1024 * mib 1) in
      Memcached.apply_load layout ~multiplier:m;
      let prng = Prng.create ~seed:(1000 + m) in
      let fatal = ref 0 and recov = ref 0 and killed = ref 0 in
      let trials = 100_000 in
      for _ = 1 to trials do
        match Memlayout.hit_random_page layout prng with
        | Memlayout.Kernel_fatal -> incr fatal
        | Memlayout.Recovered -> incr recov
        | Memlayout.App_killed -> incr killed
      done;
      let pct x = 100. *. float_of_int x /. float_of_int trials in
      Printf.printf "%-12s %14.1f %12.1f %12.1f
"
        (Printf.sprintf "%dx" m) (pct !fatal) (pct !recov) (pct !killed))
    [ 3; 90; 180 ];
  Printf.printf
    "(paper 2.3: at the largest dataset ~15%% of errors are unrecoverable
    \ kernel hits and ~35%% land in kernel memory overall; an app hit kills
    \ the process.  FT-Linux masks the kernel-fatal and app-killed classes
    \ by failing over to the peer partition.)
"

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: PBZIP2 block-size sweep                            *)
(* ------------------------------------------------------------------ *)

type pbzip2_result = {
  pb_blocks_per_s : float;
  pb_msgs_per_s : float;
  pb_bytes_per_s : float;
}

(* The sustained rate is the block-completion rate once buffering effects
   have settled: we time-stamp every committed block and measure the rate
   over the last 60 %% of the run (the first 40 %% absorbs the burst phase,
   during which the mailbox ring is still filling). *)
let tail_rate series t_done =
  let buckets = Metrics.Series.buckets series in
  match buckets with
  | [] -> 0.0
  | _ ->
      let t_end = Time.to_sec_f t_done in
      let cut = 0.4 *. t_end in
      let blocks, t_first =
        List.fold_left
          (fun (acc, t_first) (t, v) ->
            let ts = Time.to_sec_f t in
            if ts >= cut then (acc +. v, Float.min t_first ts)
            else (acc, t_first))
          (0.0, infinity) buckets
      in
      if t_first = infinity || t_end <= t_first then 0.0
      else blocks /. (t_end -. t_first)

let run_pbzip2 ~mode ~block_kb ~file_mb =
  let eng = new_engine () in
  let params =
    {
      Pbzip2.default_params with
      Pbzip2.file_bytes = mib file_mb;
      block_bytes = block_kb * 1024;
    }
  in
  let t_done = ref None in
  let cap = Time.sec 600 in
  let series = Metrics.Series.create ~bucket:(Time.ms 250) in
  let on_block_done _ = Metrics.Series.add series ~at:(Engine.now eng) 1.0 in
  match mode with
  | `Ubuntu ->
      let app api =
        Pbzip2.run ~params ~on_block_done api;
        t_done := Some (Engine.now eng)
      in
      let _sa = Cluster.create_standalone eng ~app () in
      drive eng ~cap ~stop:(fun () -> !t_done <> None);
      let dt = Option.value ~default:cap !t_done in
      { pb_blocks_per_s = tail_rate series dt; pb_msgs_per_s = 0.; pb_bytes_per_s = 0. }
  | `Ft kind ->
      let mailbox_capacity =
        match kind with `Burst -> burst_capacity | `Sustained -> 4096
      in
      let app api =
        if Kernel.name api.Api.kernel = "primary" then begin
          Pbzip2.run ~params ~on_block_done api;
          t_done := Some (Engine.now eng)
        end
        else Pbzip2.run ~params api
      in
      let cluster =
        Cluster.create eng ~config:(ft_config ~mailbox_capacity ()) ~app ()
      in
      drive eng ~cap ~stop:(fun () -> !t_done <> None);
      let msgs = Cluster.traffic_msgs cluster in
      let bytes = Cluster.traffic_bytes cluster in
      Cluster.shutdown cluster;
      let dt = Option.value ~default:cap !t_done in
      let dts = Time.to_sec_f dt in
      {
        pb_blocks_per_s = tail_rate series dt;
        pb_msgs_per_s = float_of_int msgs /. dts;
        pb_bytes_per_s = float_of_int bytes /. dts;
      }

let fig4_5 quick =
  let file_mb = if quick then 64 else 512 in
  hr
    (Printf.sprintf
       "Figure 4: PBZIP2 blocks/s vs block size (%d MiB file, 32 workers)"
       file_mb);
  let sizes = if quick then [ 25; 50; 100 ] else [ 25; 50; 100; 200; 400; 900 ] in
  let rows =
    List.map
      (fun kb ->
        let u = run_pbzip2 ~mode:`Ubuntu ~block_kb:kb ~file_mb in
        let b = run_pbzip2 ~mode:(`Ft `Burst) ~block_kb:kb ~file_mb in
        let s = run_pbzip2 ~mode:(`Ft `Sustained) ~block_kb:kb ~file_mb in
        (kb, u, b, s))
      sizes
  in
  Printf.printf "%-10s %12s %12s %14s %12s\n" "block(KB)" "Ubuntu" "FT-peak"
    "FT-sustained" "sust/Ubu%";
  List.iter
    (fun (kb, u, b, s) ->
      Printf.printf "%-10d %12.0f %12.0f %14.0f %12.1f\n" kb u.pb_blocks_per_s
        b.pb_blocks_per_s s.pb_blocks_per_s
        (100. *. s.pb_blocks_per_s /. u.pb_blocks_per_s))
    rows;
  Printf.printf
    "(paper: FT ~80%% of Ubuntu at 50-100 KB; peak tracks Ubuntu; sustained\n\
    \ drops steadily below 50 KB as the secondary's replay falls behind)\n";
  hr "Figure 5: inter-replica traffic vs block size (unthrottled run)";
  Printf.printf "%-10s %14s %14s %14s\n" "block(KB)" "msgs/s" "KB/s" "bytes/msg";
  List.iter
    (fun (kb, _u, b, _s) ->
      Printf.printf "%-10d %14.0f %14.1f %14.1f\n" kb b.pb_msgs_per_s
        (b.pb_bytes_per_s /. 1024.)
        (if b.pb_msgs_per_s > 0. then b.pb_bytes_per_s /. b.pb_msgs_per_s else 0.))
    rows;
  Printf.printf
    "(paper: ~34k msgs/s and 4.3 MB/s at 50 KB blocks; traffic grows\n\
    \ super-linearly as blocks shrink)\n"

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7: Mongoose under ApacheBench, CPU-load sweep         *)
(* ------------------------------------------------------------------ *)

type mongoose_result = {
  mg_req_per_s : float;
  mg_msgs_per_s : float;
  mg_bytes_per_s : float;
}

let run_mongoose ~mode ~cpu_k ~warmup ~window ~concurrency =
  let eng = new_engine () in
  let link = gbit_link eng in
  let cpu_per_request = Time.us 100 * (1 lsl cpu_k) in
  let params =
    { Mongoose.default_params with Mongoose.workers = 32; cpu_per_request }
  in
  let app api = Mongoose.run ~params api in
  let cluster_opt =
    match mode with
    | `Ubuntu ->
        let _sa =
          Cluster.create_standalone eng ~link:(Link.endpoint_a link) ~app ()
        in
        None
    | `Ft kind ->
        let mailbox_capacity =
          match kind with `Burst -> burst_capacity | `Sustained -> 4096
        in
        Some
          (Cluster.create eng
             ~config:(ft_config ~mailbox_capacity ())
             ~link:(Link.endpoint_a link) ~app ())
  in
  let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let ab =
    Loadgen.ab_start client ~server:"10.0.0.1" ~port:80 ~target:"/page.html"
      ~concurrency ()
  in
  Engine.run ~until:warmup eng;
  let stats = Loadgen.ab_stats ab in
  let c0 = Metrics.Counter.value stats.Loadgen.completed in
  let m0, b0 =
    match cluster_opt with
    | Some c -> (Cluster.traffic_msgs c, Cluster.traffic_bytes c)
    | None -> (0, 0)
  in
  Engine.run ~until:(warmup + window) eng;
  let c1 = Metrics.Counter.value stats.Loadgen.completed in
  let m1, b1 =
    match cluster_opt with
    | Some c -> (Cluster.traffic_msgs c, Cluster.traffic_bytes c)
    | None -> (0, 0)
  in
  Loadgen.ab_stop ab;
  (match cluster_opt with Some c -> Cluster.shutdown c | None -> ());
  let w = Time.to_sec_f window in
  {
    mg_req_per_s = float_of_int (c1 - c0) /. w;
    mg_msgs_per_s = float_of_int (m1 - m0) /. w;
    mg_bytes_per_s = float_of_int (b1 - b0) /. w;
  }

let fig6_7 quick =
  let warmup = Time.ms 400 in
  let window = if quick then Time.ms 600 else Time.ms 1500 in
  let ks = if quick then [ 0; 4; 8 ] else [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] in
  hr "Figure 6: Mongoose req/s vs per-request CPU load (10 KB page, 100 conns)";
  let rows =
    List.map
      (fun k ->
        let u = run_mongoose ~mode:`Ubuntu ~cpu_k:k ~warmup ~window ~concurrency:100 in
        let b =
          run_mongoose ~mode:(`Ft `Burst) ~cpu_k:k ~warmup ~window ~concurrency:100
        in
        let s =
          run_mongoose ~mode:(`Ft `Sustained) ~cpu_k:k ~warmup ~window
            ~concurrency:100
        in
        (k, u, b, s))
      ks
  in
  Printf.printf "%-10s %12s %12s %14s %12s\n" "cpu-load" "Ubuntu" "FT-peak"
    "FT-sustained" "sust/Ubu%";
  List.iter
    (fun (k, u, b, s) ->
      Printf.printf "%-10d %12.0f %12.0f %14.0f %12.1f\n" k u.mg_req_per_s
        b.mg_req_per_s s.mg_req_per_s
        (100. *. s.mg_req_per_s /. u.mg_req_per_s))
    rows;
  Printf.printf
    "(paper: FT within 20%% of Ubuntu below ~1500 req/s, dropping sharply at\n\
    \ higher request rates; unlike PBZIP2 the peak rate also degrades)\n";
  hr "Figure 7: inter-replica traffic vs CPU load (sustained run)";
  Printf.printf "%-10s %14s %14s %12s\n" "cpu-load" "msgs/s" "KB/s" "req/s";
  List.iter
    (fun (k, _u, _b, s) ->
      Printf.printf "%-10d %14.0f %14.1f %12.0f\n" k s.mg_msgs_per_s
        (s.mg_bytes_per_s /. 1024.)
        s.mg_req_per_s)
    rows

(* ------------------------------------------------------------------ *)
(* Section 4.3: replicated Mongoose next to a non-replicated CPU hog   *)
(* ------------------------------------------------------------------ *)

let run_sec43 ~mode =
  let eng = new_engine () in
  let link = gbit_link eng in
  let params =
    {
      Mongoose.default_params with
      Mongoose.workers = 8;
      cpu_per_request = Time.ms 1;
    }
  in
  let app api = Mongoose.run ~params api in
  let kernel, cluster_opt =
    match mode with
    | `Ubuntu ->
        let sa =
          Cluster.create_standalone eng ~cores:32 ~link:(Link.endpoint_a link)
            ~app ()
        in
        (Cluster.standalone_kernel sa, None)
    | `Ft ->
        let c =
          Cluster.create eng
            ~config:(ft_config ~split:(`Asymmetric 32) ())
            ~link:(Link.endpoint_a link) ~app ()
        in
        (Cluster.primary_kernel c, Some c)
  in
  (* The non-replicated application: saturates all 32 cores when alone. *)
  let hog = Cpuhog.start kernel ~threads:32 in
  let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let ab =
    Loadgen.ab_start client ~server:"10.0.0.1" ~port:80 ~target:"/x"
      ~concurrency:5 ()
  in
  Engine.run ~until:(Time.ms 500) eng;
  let stats = Loadgen.ab_stats ab in
  let c0 = Metrics.Counter.value stats.Loadgen.completed in
  Engine.run ~until:(Time.ms 2500) eng;
  let c1 = Metrics.Counter.value stats.Loadgen.completed in
  Loadgen.ab_stop ab;
  Cpuhog.stop hog;
  (match cluster_opt with Some c -> Cluster.shutdown c | None -> ());
  let reqs = float_of_int (c1 - c0) /. 2.0 in
  let lat_ms = Metrics.Hist.quantile stats.Loadgen.latency 0.5 *. 1000. in
  (reqs, lat_ms)

let sec43 _quick =
  hr "Section 4.3: replicated Mongoose + non-replicated CPU hog (32+1 cores)";
  let u_req, u_lat = run_sec43 ~mode:`Ubuntu in
  let f_req, f_lat = run_sec43 ~mode:`Ft in
  Printf.printf "%-22s %12s %14s\n" "config" "req/s" "p50 latency";
  Printf.printf "%-22s %12.0f %12.2fms\n" "Ubuntu (32 cores)" u_req u_lat;
  Printf.printf "%-22s %12.0f %12.2fms\n" "FT-Linux (32+1)" f_req f_lat;
  Printf.printf "throughput ratio: %.1f%%   latency delta: %+.1f%%\n"
    (100. *. f_req /. u_req)
    (100. *. ((f_lat /. u_lat) -. 1.));
  Printf.printf
    "(paper: 760 vs 700 req/s = 91%%; latency 1.3 vs 1.4 ms = +8%%)\n"

(* ------------------------------------------------------------------ *)
(* Figure 8: large file transfer with mid-stream failover              *)
(* ------------------------------------------------------------------ *)

let run_fig8 ~mode ~file_mb ~fail_at =
  let eng = new_engine () in
  let link = gbit_link eng in
  let params =
    {
      Fileserver.default_params with
      Fileserver.file_bytes = mib file_mb;
      chunk_bytes = 64 * 1024;
    }
  in
  let app api = Fileserver.run ~params api in
  let cluster_opt =
    match mode with
    | `Ubuntu ->
        let _sa =
          Cluster.create_standalone eng ~link:(Link.endpoint_a link) ~app ()
        in
        None
    | `Ft ->
        Some
          (Cluster.create eng ~config:(ft_config ()) ~link:(Link.endpoint_a link)
             ~app ())
  in
  (match (cluster_opt, fail_at) with
  | Some c, Some at -> Cluster.fail_primary c ~at
  | _ -> ());
  let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let w =
    Loadgen.wget_start client ~server:"10.0.0.1" ~port:80 ~target:"/file"
      ~bucket:(Time.sec 1) ()
  in
  drive eng ~cap:(Time.sec 240) ~stop:(fun () -> Ivar.is_filled w.Loadgen.total);
  (match cluster_opt with Some c -> Cluster.shutdown c | None -> ());
  let total = Option.value ~default:0 (Ivar.peek w.Loadgen.total) in
  let series = Metrics.Series.rate_per_sec w.Loadgen.bytes_received in
  (total, Time.to_sec_f (Engine.now eng), series,
   Option.bind cluster_opt Cluster.failover_started_at,
   Option.bind cluster_opt Cluster.failover_completed_at)

let fig8 quick =
  let file_mb = if quick then 512 else 2048 in
  let fail_at = Time.sec (if quick then 2 else 6) in
  hr
    (Printf.sprintf
       "Figure 8: %d MiB HTTP transfer over 1 Gb/s (paper: 10 GB; scaled, \
        steady-state rates are size-independent)"
       file_mb);
  let t_lin, d_lin, s_lin, _, _ = run_fig8 ~mode:`Ubuntu ~file_mb ~fail_at:None in
  let t_ft, d_ft, s_ft, _, _ = run_fig8 ~mode:`Ft ~file_mb ~fail_at:None in
  let t_fo, d_fo, s_fo, fo_start, fo_done =
    run_fig8 ~mode:`Ft ~file_mb ~fail_at:(Some fail_at)
  in
  let rate_at series t =
    match List.assoc_opt t series with Some r -> r /. 1e6 | None -> 0.0
  in
  let horizon = int_of_float (Float.round (Float.max d_fo (Float.max d_lin d_ft))) in
  Printf.printf "%-6s %12s %12s %14s   (MB/s per 1 s bucket)\n" "t(s)" "Linux"
    "FT-Linux" "FT+failover";
  for t = 0 to horizon do
    let ts = float_of_int t in
    Printf.printf "%-6d %12.1f %12.1f %14.1f\n" t (rate_at s_lin ts)
      (rate_at s_ft ts) (rate_at s_fo ts)
  done;
  let mbps total dur = float_of_int total /. dur /. 1e6 in
  Printf.printf "\n%-22s %10s %12s %10s\n" "scenario" "bytes" "duration" "MB/s";
  Printf.printf "%-22s %10d %10.1fs %10.1f\n" "Linux" t_lin d_lin (mbps t_lin d_lin);
  Printf.printf "%-22s %10d %10.1fs %10.1f (%.0f%% of Linux)\n" "FT-Linux" t_ft
    d_ft (mbps t_ft d_ft)
    (100. *. mbps t_ft d_ft /. mbps t_lin d_lin);
  Printf.printf "%-22s %10d %10.1fs %10.1f\n" "FT-Linux + failover" t_fo d_fo
    (mbps t_fo d_fo);
  (match (fo_start, fo_done) with
  | Some a, Some b ->
      Printf.printf
        "failover: detected at %.2fs, live at %.2fs (outage %.2fs; driver \
         reload dominates)\n"
        (Time.to_sec_f a) (Time.to_sec_f b)
        (Time.to_sec_f (b - a))
  | _ -> Printf.printf "failover: did not trigger!\n");
  Printf.printf
    "(paper: FT reaches ~85%% of Ubuntu; on failure throughput drops to zero\n\
    \ for ~5 s — 99%% of it NIC driver reload — then recovers to the Ubuntu \
     rate)\n"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                 *)
(* ------------------------------------------------------------------ *)

(* A: replica proximity (the paper's motivation: 0.55 us core-to-core vs
   135 us LAN, with RDMA in between).  The same replicated web server, with
   only the replica-to-replica propagation delay changed. *)
let ablation_proximity () =
  hr "Ablation A: replica proximity (inter-replica propagation delay)";
  Printf.printf "%-22s %12s %12s
" "link" "req/s" "p50 latency";
  List.iter
    (fun (label, delay) ->
      let eng = Engine.create () in
      let link = gbit_link eng in
      let config =
        {
          (ft_config ()) with
          Cluster.mailbox_config =
            { Mailbox.default_config with Mailbox.propagation_delay = delay };
        }
      in
      let app api =
        Mongoose.run ~params:{ Mongoose.default_params with Mongoose.workers = 32 } api
      in
      let cluster = Cluster.create eng ~config ~link:(Link.endpoint_a link) ~app () in
      let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
      let ab =
        Loadgen.ab_start client ~server:"10.0.0.1" ~port:80 ~target:"/x"
          ~concurrency:100 ()
      in
      Engine.run ~until:(Time.ms 300) eng;
      let st = Loadgen.ab_stats ab in
      let c0 = Metrics.Counter.value st.Loadgen.completed in
      Engine.run ~until:(Time.ms 1300) eng;
      let c1 = Metrics.Counter.value st.Loadgen.completed in
      Loadgen.ab_stop ab;
      Cluster.shutdown cluster;
      Printf.printf "%-22s %12.0f %10.2fms
" label
        (float_of_int (c1 - c0))
        (1000. *. Metrics.Hist.quantile st.Loadgen.latency 0.5))
    [
      ("intra-machine 0.55us", Time.ns 550);
      ("RDMA-class 13.5us", Time.ns 13_500);
      ("LAN 135us", Time.us 135);
    ];
  Printf.printf
    "(the paper's motivation: physical separation multiplies replica
    \ round-trips by ~2-3 orders of magnitude, taxing every output commit)
"

(* B: output commit on/off (the relaxation of 3.5: inside one machine,
   messages already in the shared-memory ring survive the sender, so the
   primary may release output without waiting for acknowledgement). *)
let ablation_output_commit () =
  hr "Ablation B: output commit strict vs relaxed (3.5), 512 MiB transfer";
  Printf.printf "%-22s %12s
" "mode" "MB/s";
  List.iter
    (fun (label, oc) ->
      let eng = Engine.create () in
      let link = gbit_link eng in
      let config = { (ft_config ()) with Cluster.output_commit = oc; ack_commit = oc } in
      let app api =
        Fileserver.run
          ~params:
            {
              Fileserver.default_params with
              Fileserver.file_bytes = mib 512;
              chunk_bytes = 64 * 1024;
            }
          api
      in
      let _c = Cluster.create eng ~config ~link:(Link.endpoint_a link) ~app () in
      let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
      let w =
        Loadgen.wget_start client ~server:"10.0.0.1" ~port:80 ~target:"/f" ()
      in
      drive eng ~cap:(Time.sec 60) ~stop:(fun () -> Ivar.is_filled w.Loadgen.total);
      Cluster.shutdown _c;
      let total = Option.value ~default:0 (Ivar.peek w.Loadgen.total) in
      Printf.printf "%-22s %12.1f
" label
        (float_of_int total /. Time.to_sec_f (Engine.now eng) /. 1e6))
    [ ("strict (default)", true); ("relaxed", false) ]

(* C: the wake_up_process replay cost — the secondary's serial bottleneck
   (4.1) — swept on the PBZIP2 sustained point that collapses. *)
let ablation_wake_latency () =
  hr "Ablation C: replay wake latency vs PBZIP2 sustained rate (25 KB blocks)";
  Printf.printf "%-12s %14s
" "wake (us)" "blocks/s";
  List.iter
    (fun us ->
      let eng = Engine.create () in
      let config =
        {
          (ft_config ()) with
          Cluster.kernel_config =
            { Kernel.default_config with Kernel.wake_latency = Time.us us };
        }
      in
      let params =
        {
          Pbzip2.default_params with
          Pbzip2.file_bytes = mib 96;
          block_bytes = 25 * 1024;
        }
      in
      let t_done = ref None in
      let series = Metrics.Series.create ~bucket:(Time.ms 250) in
      let app api =
        if Kernel.name api.Api.kernel = "primary" then begin
          Pbzip2.run ~params
            ~on_block_done:(fun _ ->
              Metrics.Series.add series ~at:(Engine.now eng) 1.0)
            api;
          t_done := Some (Engine.now eng)
        end
        else Pbzip2.run ~params api
      in
      let cluster = Cluster.create eng ~config ~app () in
      drive eng ~cap:(Time.sec 120) ~stop:(fun () -> !t_done <> None);
      Cluster.shutdown cluster;
      let dt = Option.value ~default:(Time.sec 120) !t_done in
      Printf.printf "%-12d %14.0f
" us (tail_rate series dt))
    [ 15; 30; 55; 110 ]

(* D: the cost of the third replica (6 extension): the same transfer
   unreplicated, with one backup, and with two backups (quorum 1). *)
let ablation_replica_count () =
  hr "Ablation D: replica count vs transfer rate (512 MiB over 1 Gb/s)";
  Printf.printf "%-22s %12s
" "replicas" "MB/s";
  let fileserver_app api =
    Fileserver.run
      ~params:
        {
          Fileserver.default_params with
          Fileserver.file_bytes = mib 512;
          chunk_bytes = 64 * 1024;
        }
      api
  in
  let measure label build =
    let eng = Engine.create () in
    let link = gbit_link eng in
    let shutdown = build eng link in
    let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
    let w = Loadgen.wget_start client ~server:"10.0.0.1" ~port:80 ~target:"/f" () in
    drive eng ~cap:(Time.sec 60) ~stop:(fun () -> Ivar.is_filled w.Loadgen.total);
    shutdown ();
    let total = Option.value ~default:0 (Ivar.peek w.Loadgen.total) in
    Printf.printf "%-22s %12.1f
" label
      (float_of_int total /. Time.to_sec_f (Engine.now eng) /. 1e6)
  in
  measure "1 (unreplicated)" (fun eng link ->
      let _sa =
        Cluster.create_standalone eng ~link:(Link.endpoint_a link)
          ~app:fileserver_app ()
      in
      fun () -> ());
  measure "2 (primary+backup)" (fun eng link ->
      let c =
        Cluster.create eng ~config:(ft_config ()) ~link:(Link.endpoint_a link)
          ~app:fileserver_app ()
      in
      fun () -> Cluster.shutdown c);
  measure "3 (quorum 1 of 2)" (fun eng link ->
      let c =
        Tricluster.create eng ~config:(ft_config ()) ~link:(Link.endpoint_a link)
          ~app:fileserver_app ()
      in
      fun () -> Tricluster.shutdown c);
  Printf.printf
    "(with quorum-1 stability the third replica is nearly free on the
    \ output path: the faster backup's acknowledgement releases output)
"

let ablations _quick =
  ablation_proximity ();
  ablation_output_commit ();
  ablation_wake_latency ();
  ablation_replica_count ()

(* ------------------------------------------------------------------ *)
(* Microbenchmarks of the simulator's primitives (Bechamel)            *)
(* ------------------------------------------------------------------ *)

let micro _quick =
  hr "Microbenchmarks: simulator primitives (host wall-clock, Bechamel OLS)";
  let bench_engine_events () =
    let eng = Engine.create () in
    for _ = 1 to 100 do
      ignore
        (Engine.spawn eng (fun () ->
             for _ = 1 to 10 do
               Engine.sleep (Time.us 1)
             done))
    done;
    Engine.run eng
  in
  let bench_mailbox () =
    let eng = Engine.create () in
    let m = Machine.create eng Topology.small in
    let a, b = Machine.split_symmetric m in
    let ch = Mailbox.create eng ~src:a ~dst:b () in
    ignore
      (Engine.spawn eng (fun () ->
           for i = 1 to 100 do
             Mailbox.send ch ~bytes:32 i
           done));
    ignore
      (Engine.spawn eng (fun () ->
           for _ = 1 to 100 do
             ignore (Mailbox.recv ch)
           done));
    Engine.run eng
  in
  let bench_pthread () =
    let eng = Engine.create () in
    let m = Machine.create eng Topology.small in
    let a, _ = Machine.split_symmetric m in
    let k = Kernel.boot a () in
    let pt = Pthread.create k in
    let mu = Pthread.mutex_create pt in
    ignore
      (Engine.spawn eng (fun () ->
           for _ = 1 to 100 do
             Pthread.mutex_lock pt mu;
             Pthread.mutex_unlock pt mu
           done));
    Engine.run eng
  in
  let bench_prng () =
    let g = Prng.create ~seed:1 in
    for _ = 1 to 1000 do
      ignore (Prng.int g 1000)
    done
  in
  let tests =
    Bechamel.Test.make_grouped ~name:"ftsim"
      [
        Bechamel.Test.make ~name:"engine-1k-events"
          (Bechamel.Staged.stage bench_engine_events);
        Bechamel.Test.make ~name:"mailbox-100-rt"
          (Bechamel.Staged.stage bench_mailbox);
        Bechamel.Test.make ~name:"pthread-100-lock"
          (Bechamel.Staged.stage bench_pthread);
        Bechamel.Test.make ~name:"prng-1k" (Bechamel.Staged.stage bench_prng);
      ]
  in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.5) ()
  in
  let raw =
    Bechamel.Benchmark.all cfg
      Bechamel.Toolkit.Instance.[ monotonic_clock ]
      tests
  in
  let results =
    Bechamel.Analyze.all
      (Bechamel.Analyze.ols ~r_square:true ~bootstrap:0
         ~predictors:[| Bechamel.Measure.run |])
      Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ols) ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-28s %12.0f ns/run\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    rows

(* ------------------------------------------------------------------ *)
(* Chaos campaigns: fault-schedule sweeps with the divergence checker  *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: a robustness experiment over the reproduction
   itself.  Derives N random fault/perturbation schedules per replica
   count, runs each under the client-consistency oracle and the digest
   divergence checker, and reports the verdict distribution plus how much
   comparison surface (digest sections + per-thread syscall folds) each
   campaign covered. *)
(* --jobs: worker domains for chaos campaigns (0/unset = auto, all cores
   but the coordinator's).  The merged report is byte-identical whatever
   the value; only wall-clock changes. *)
let jobs_override : int option ref = ref None

let effective_jobs () =
  match !jobs_override with
  | Some n when n >= 1 -> n
  | _ -> Chaos.default_jobs ()

let chaos quick =
  hr "Chaos campaigns: randomized fault schedules + divergence checking";
  let count = if quick then 6 else 25 in
  let horizon = Time.sec 3 in
  let jobs = effective_jobs () in
  let campaign ~replicas ~workload =
    let wall0 = Unix.gettimeofday () in
    let run = Chaosrun.run ~workload ~replicas in
    let report =
      Chaos.run_campaign ~root_seed:42 ~count ~replicas ~horizon
        ~workload:(Chaosrun.workload_to_string workload)
        ~run ~jobs ()
    in
    let wall = Unix.gettimeofday () -. wall0 in
    let outcomes = List.map (fun rr -> rr.Chaos.rr_outcome) report.Chaos.rep_results in
    let count_of p = List.length (List.filter p outcomes) in
    let sum f = List.fold_left (fun a o -> a + f o) 0 outcomes in
    Printf.printf "%-12s %2dx %-12s %3dok %3ddiv %3dviol %3doutage %4dfo %9dpts %6.1fs\n"
      (Chaosrun.workload_to_string workload)
      replicas "replicas"
      (count_of (fun o -> o.Chaos.verdict = Chaos.V_ok))
      (count_of (fun o -> match o.Chaos.verdict with Chaos.V_divergence _ -> true | _ -> false))
      (count_of (fun o -> match o.Chaos.verdict with Chaos.V_client_violation _ -> true | _ -> false))
      (count_of (fun o -> o.Chaos.verdict = Chaos.V_outage))
      (sum (fun o -> o.Chaos.o_failovers))
      (sum (fun o -> o.Chaos.o_sections))
      wall;
    (match report.Chaos.rep_minimal with
    | None -> ()
    | Some (s, _, runs) ->
        Printf.printf "  minimal repro after %d shrink runs: %s\n" runs
          (Format.asprintf "%a" Chaos.pp_schedule s))
  in
  Printf.printf "%-12s %-15s %5s %5s %6s %7s %5s %9s %7s\n" "workload"
    "config" "ok" "div" "viol" "outage" "fo" "points" "wall";
  campaign ~replicas:2 ~workload:Chaosrun.Fileserver;
  campaign ~replicas:2 ~workload:Chaosrun.Mongoose;
  campaign ~replicas:3 ~workload:Chaosrun.Fileserver;
  Printf.printf
    "(div/viol must be zero: a divergence is a replication bug, a violation
    \ a broken client guarantee; outages are excused total-failure runs)\n"

(* ------------------------------------------------------------------ *)
(* Chaosparallel: campaign throughput vs worker domains                *)
(* ------------------------------------------------------------------ *)

(* Harness-scaling experiment: the same fileserver campaign at jobs in
   {1, 2, 4, 8}, measuring wall-clock seeds/sec and asserting the merged
   report stays byte-identical to the sequential run at every width (the
   determinism contract of the domain-pool merge).  seeds_per_sec and
   speedup_x are wall-clock numbers — the only non-simulated metrics any
   bench publishes — so the regress gate compares them with a wide
   tolerance, while report_identical is exact.  BENCH_chaosparallel.json is
   therefore NOT byte-stable across runs; CI must not cmp two runs of it. *)
let chaosparallel quick =
  hr "Chaos parallel: campaign seeds/sec vs worker domains";
  let summary = new_engine () in
  let reg = Engine.metrics summary in
  let g key v = Metrics.Gauge.set (Metrics.Registry.gauge reg key) v in
  let count = if quick then 32 else 1000 in
  let horizon = Time.sec 3 in
  let run = Chaosrun.run ~workload:Chaosrun.Fileserver ~replicas:2 in
  let campaign jobs =
    let wall0 = Unix.gettimeofday () in
    let report =
      Chaos.run_campaign ~root_seed:42 ~count ~replicas:2 ~horizon
        ~workload:"fileserver" ~run ~jobs ()
    in
    (Chaos.report_to_json report, Unix.gettimeofday () -. wall0)
  in
  Printf.printf "%d-seed fileserver campaign, horizon %s (cores: %d)\n" count
    (Time.to_string horizon)
    (Domain.recommended_domain_count ());
  Printf.printf "%6s %12s %10s %10s %10s\n" "jobs" "wall(s)" "seeds/s"
    "speedup" "report";
  let json1, wall1 = campaign 1 in
  let all_identical = ref true in
  List.iter
    (fun jobs ->
      let json, wall = if jobs = 1 then (json1, wall1) else campaign jobs in
      let identical = String.equal json json1 in
      if not identical then all_identical := false;
      Printf.printf "%6d %12.2f %10.1f %10.2fx %10s\n" jobs wall
        (float_of_int count /. wall)
        (wall1 /. wall)
        (if identical then "identical" else "DIVERGED");
      g (Printf.sprintf "chaosparallel.j%d.seeds_per_sec" jobs)
        (float_of_int count /. wall);
      g (Printf.sprintf "chaosparallel.j%d.speedup_x" jobs) (wall1 /. wall);
      g
        (Printf.sprintf "chaosparallel.j%d.report_identical" jobs)
        (if identical then 1.0 else 0.0))
    [ 1; 2; 4; 8 ];
  Printf.printf
    "(acceptance: every report byte-identical to jobs=1; >=3x speedup at\n\
    \ jobs=4 on 4+ cores.  The regress gate holds report_identical exactly\n\
    \ and the wall-clock seeds_per_sec / speedup_x within a wide\n\
    \ machine-noise tolerance against bench/baseline/BENCH_chaosparallel.json)\n";
  if not !all_identical then begin
    Printf.printf "chaosparallel: MERGE DETERMINISM VIOLATED\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Batch: sync-tuple streaming with batching off vs on                 *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: measures what the batched sync-tuple streaming
   optimisation buys.  Each workload runs twice — once with
   [Msglayer.unbatched] (one wire frame per record, the pre-batching
   behaviour) and once with the default batching config (optionally
   overridden by --batch-window / --batch-bytes) — and reports the
   replication messages and bytes per application operation.  The
   per-op gauges land in BENCH_batch.json and are the surface the
   bench-regress CI gate diffs against bench/baseline/. *)

let batch_window_override : Time.t option ref = ref None
let batch_bytes_override : int option ref = ref None

(* --replay-workers: size the backups' replay-executor pools for any
   experiment that builds clusters from [scaling_config] (default 1 = the
   serial drain the committed baselines were recorded with). *)
let replay_workers_override : int option ref = ref None

let effective_replay_workers () =
  match !replay_workers_override with Some n -> n | None -> 1

let batch_on_config () =
  let b = Msglayer.default_batch in
  let b =
    match !batch_window_override with
    | Some w -> { b with Msglayer.batch_window = w }
    | None -> b
  in
  match !batch_bytes_override with
  | Some n -> { b with Msglayer.batch_bytes = n }
  | None -> b

type batch_row = {
  br_ops : float;
  br_msgs : float;
  br_bytes : float;
  br_dur : float;  (** seconds of simulated time covered by the counts *)
}

(* Closed-loop memcached clients: each does [iters] set+get pairs with
   fixed-size values, so every response has a known length and the loop
   needs no protocol parser. *)
let run_batch_memcached ~batch ~iters ~clients =
  let eng = new_engine () in
  let link = gbit_link eng in
  let config = { (ft_config ()) with Cluster.batch } in
  let cluster =
    Cluster.create eng ~config ~link:(Link.endpoint_a link)
      ~app:(fun api -> Memcached.server api)
      ()
  in
  let host = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let ops = ref 0 and finished = ref 0 in
  let value = String.make 64 'v' in
  for cl = 0 to clients - 1 do
    ignore
      (Host.spawn host
         (Printf.sprintf "mc-client-%d" cl)
         (fun () ->
           let c = Tcp.connect (Host.stack host) ~host:"10.0.0.1" ~port:11211 in
           let buf = Buffer.create 256 in
           let read_exactly n =
             while Buffer.length buf < n do
               match Tcp.recv c ~max:4096 with
               | [] -> raise Tcp.Connection_closed
               | cs -> Buffer.add_string buf (Payload.concat_to_string cs)
             done;
             Buffer.clear buf
           in
           (try
              for i = 1 to iters do
                let key = Printf.sprintf "k%d-%d" cl (i mod 8) in
                Tcp.send c
                  (Payload.of_string
                     (Printf.sprintf "set %s %d\r\n%s" key
                        (String.length value) value));
                read_exactly 8 (* STORED\r\n *);
                incr ops;
                Tcp.send c (Payload.of_string (Printf.sprintf "get %s\r\n" key));
                (* VALUE 64\r\n + 64 value bytes *)
                read_exactly (10 + String.length value);
                incr ops
              done;
              Tcp.send c (Payload.of_string "quit\r\n")
            with Tcp.Connection_closed -> ());
           incr finished))
  done;
  drive eng ~cap:(Time.sec 120) ~stop:(fun () -> !finished = clients);
  let msgs = Cluster.traffic_msgs cluster in
  let bytes = Cluster.traffic_bytes cluster in
  let dur = Time.to_sec_f (Engine.now eng) in
  Cluster.shutdown cluster;
  {
    br_ops = float_of_int !ops;
    br_msgs = float_of_int msgs;
    br_bytes = float_of_int bytes;
    br_dur = dur;
  }

let run_batch_mongoose ~batch ~window =
  let eng = new_engine () in
  let link = gbit_link eng in
  let config = { (ft_config ()) with Cluster.batch } in
  let app api =
    Mongoose.run ~params:{ Mongoose.default_params with Mongoose.workers = 32 } api
  in
  let cluster = Cluster.create eng ~config ~link:(Link.endpoint_a link) ~app () in
  let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let ab =
    Loadgen.ab_start client ~server:"10.0.0.1" ~port:80 ~target:"/page.html"
      ~concurrency:50 ()
  in
  Engine.run ~until:(Time.ms 300) eng;
  let st = Loadgen.ab_stats ab in
  let c0 = Metrics.Counter.value st.Loadgen.completed in
  let m0 = Cluster.traffic_msgs cluster and b0 = Cluster.traffic_bytes cluster in
  Engine.run ~until:(Time.ms 300 + window) eng;
  let c1 = Metrics.Counter.value st.Loadgen.completed in
  let m1 = Cluster.traffic_msgs cluster and b1 = Cluster.traffic_bytes cluster in
  Loadgen.ab_stop ab;
  Cluster.shutdown cluster;
  {
    br_ops = float_of_int (c1 - c0);
    br_msgs = float_of_int (m1 - m0);
    br_bytes = float_of_int (b1 - b0);
    br_dur = Time.to_sec_f window;
  }

let run_batch_fileserver ~batch ~file_mb =
  let eng = new_engine () in
  let link = gbit_link eng in
  let chunk_bytes = 64 * 1024 in
  let config = { (ft_config ()) with Cluster.batch } in
  let app api =
    Fileserver.run
      ~params:
        { Fileserver.default_params with
          Fileserver.file_bytes = mib file_mb;
          chunk_bytes;
        }
      api
  in
  let cluster = Cluster.create eng ~config ~link:(Link.endpoint_a link) ~app () in
  let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let w =
    Loadgen.wget_start client ~server:"10.0.0.1" ~port:80 ~target:"/file" ()
  in
  drive eng ~cap:(Time.sec 120) ~stop:(fun () -> Ivar.is_filled w.Loadgen.total);
  let msgs = Cluster.traffic_msgs cluster in
  let bytes = Cluster.traffic_bytes cluster in
  let dur = Time.to_sec_f (Engine.now eng) in
  Cluster.shutdown cluster;
  let total = Option.value ~default:0 (Ivar.peek w.Loadgen.total) in
  (* One "op" is a 64 KiB chunk served. *)
  {
    br_ops = float_of_int (total / chunk_bytes);
    br_msgs = float_of_int msgs;
    br_bytes = float_of_int bytes;
    br_dur = dur;
  }

let batch quick =
  hr "Batch: replication traffic, sync-tuple batching off vs on";
  (* The summary engine is created first so its gauges are element 0 of
     BENCH_batch.json — the slot the regression comparator reads. *)
  let summary = new_engine () in
  let reg = Engine.metrics summary in
  let on = batch_on_config () in
  Printf.printf
    "batching: records<=%d, bytes<=%d, window=%s, ack_every=%d, ack_delay=%s\n"
    on.Msglayer.batch_records on.Msglayer.batch_bytes
    (Time.to_string on.Msglayer.batch_window)
    on.Msglayer.ack_every
    (Time.to_string on.Msglayer.ack_delay);
  let iters = if quick then 150 else 600 in
  let window = if quick then Time.ms 600 else Time.ms 1500 in
  let file_mb = if quick then 64 else 256 in
  let workloads =
    [
      ( "memcached",
        fun b -> run_batch_memcached ~batch:b ~iters ~clients:4 );
      ("mongoose", fun b -> run_batch_mongoose ~batch:b ~window);
      ("fileserver", fun b -> run_batch_fileserver ~batch:b ~file_mb);
    ]
  in
  Printf.printf "%-12s %-5s %8s %10s %10s %10s %10s\n" "workload" "mode" "ops"
    "msgs" "msgs/op" "bytes/op" "ops/s";
  List.iter
    (fun (name, run) ->
      let off_r = run Msglayer.unbatched in
      let on_r = run on in
      let per r v = if r.br_ops > 0. then v /. r.br_ops else 0. in
      let rate r = if r.br_dur > 0. then r.br_ops /. r.br_dur else 0. in
      let row mode r =
        Printf.printf "%-12s %-5s %8.0f %10.0f %10.2f %10.1f %10.0f\n" name
          mode r.br_ops r.br_msgs (per r r.br_msgs) (per r r.br_bytes) (rate r)
      in
      row "off" off_r;
      row "on" on_r;
      let reduction =
        if per off_r off_r.br_msgs > 0. then
          100. *. (1. -. (per on_r on_r.br_msgs /. per off_r off_r.br_msgs))
        else 0.
      in
      Printf.printf "%-12s msgs/op reduction: %.1f%%\n" "" reduction;
      let g key v = Metrics.Gauge.set (Metrics.Registry.gauge reg key) v in
      List.iter
        (fun (mode, r) ->
          g (Printf.sprintf "batch.%s.%s.ops" name mode) r.br_ops;
          g (Printf.sprintf "batch.%s.%s.msgs" name mode) r.br_msgs;
          g (Printf.sprintf "batch.%s.%s.msgs_per_op" name mode) (per r r.br_msgs);
          g (Printf.sprintf "batch.%s.%s.bytes_per_op" name mode) (per r r.br_bytes);
          g (Printf.sprintf "batch.%s.%s.ops_per_sec" name mode) (rate r))
        [ ("off", off_r); ("on", on_r) ];
      g (Printf.sprintf "batch.%s.msgs_per_op_reduction_pct" name) reduction)
    workloads;
  Printf.printf
    "(acceptance: memcached msgs/op must drop by >=20%% with default batching;\n\
    \ the CI bench-regress gate fails on >10%% drift from bench/baseline/)\n"

(* ------------------------------------------------------------------ *)
(* Scaling: det-section sharding off vs on, worker-count sweep         *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: measures what the per-channel deterministic-section
   core buys over the namespace-global mutex and total order.  Each
   workload runs at several worker counts with det sharding off and on;
   per run we record the application rate plus the det-core overhead
   instruments (det.lock_wait_ns, the det.contended counters).  The runs use the
   bounded (sustained) mailbox, so the replay-backpressure regime where
   the global lock couples every sync object is the one measured.  The
   ops/s gauges land in BENCH_scaling.json under "scaling." and are
   diffed by the bench-regress CI gate; lock wait and contention counts
   are informational. *)

type scaling_row = {
  sr_ops_per_s : float;
  sr_lock_wait_ms : float;
  sr_contended : int;
  sr_sections : int;
}

let det_overhead eng =
  let reg = Engine.metrics eng in
  let h = Metrics.Registry.hist reg "det.lock_wait_ns" in
  let wait_ms =
    if Metrics.Hist.count h = 0 then 0.0
    else float_of_int (Metrics.Hist.count h) *. Metrics.Hist.mean h /. 1e6
  in
  let c k = Metrics.Counter.value (Metrics.Registry.counter reg k) in
  ( wait_ms,
    c "det.contended.misc" + c "det.contended.fs" + c "det.contended.obj",
    c "det.sections" )

(* One frame per record and a small ring: the secondary's per-record
   replay charge makes it the slow side, so the primary hits mailbox
   backpressure and appends block {e inside} det sections.  That is the
   regime where the namespace-global mutex couples every sync object —
   one thread stalled flushing stalls all of them — and where per-channel
   streams let independent objects keep moving.  With the default batched
   sink appends only stage and never block in-section, so neither variant
   would ever observe contention. *)
let scaling_config ?replay_workers ~det_shard () =
  let replay_workers =
    match replay_workers with
    | Some n -> n
    | None -> effective_replay_workers ()
  in
  {
    (ft_config ~mailbox_capacity:256 ()) with
    Cluster.det_shard;
    replay_workers;
    batch = Msglayer.unbatched;
  }

let run_scaling_pbzip2 ?replay_workers ~det_shard ~workers ~file_mb () =
  let eng = new_engine () in
  let params =
    {
      Pbzip2.default_params with
      Pbzip2.file_bytes = mib file_mb;
      block_bytes = 25 * 1024;
      workers;
    }
  in
  let t_done = ref None in
  let app api =
    Pbzip2.run ~params api;
    if Kernel.name api.Api.kernel = "primary" then
      t_done := Some (Engine.now eng)
  in
  let cluster =
    Cluster.create eng
      ~config:(scaling_config ?replay_workers ~det_shard ())
      ~app ()
  in
  drive eng ~cap:(Time.sec 300) ~stop:(fun () -> !t_done <> None);
  Cluster.shutdown cluster;
  let dur = Time.to_sec_f (Option.value ~default:(Time.sec 300) !t_done) in
  let wait_ms, contended, sections = det_overhead eng in
  {
    sr_ops_per_s = float_of_int (Pbzip2.block_count params) /. dur;
    sr_lock_wait_ms = wait_ms;
    sr_contended = contended;
    sr_sections = sections;
  }

(* Pure compute, no shared sync objects beyond spawn/join: the control —
   sharding must not change it. *)
let run_scaling_cpuhog ~det_shard ~threads ~slices =
  let eng = new_engine () in
  let t_done = ref None in
  let app (api : Api.t) =
    let ths =
      List.init threads (fun i ->
          api.Api.thread.spawn
            (Printf.sprintf "hog-%d" i)
            (fun () ->
              for _ = 1 to slices do
                api.Api.thread.compute (Time.ms 1)
              done))
    in
    List.iter api.Api.thread.join ths;
    if Kernel.name api.Api.kernel = "primary" then
      t_done := Some (Engine.now eng)
  in
  let cluster =
    Cluster.create eng ~config:(scaling_config ~det_shard ()) ~app ()
  in
  drive eng ~cap:(Time.sec 300) ~stop:(fun () -> !t_done <> None);
  Cluster.shutdown cluster;
  let dur = Time.to_sec_f (Option.value ~default:(Time.sec 300) !t_done) in
  let wait_ms, contended, sections = det_overhead eng in
  {
    sr_ops_per_s = float_of_int (threads * slices) /. dur;
    sr_lock_wait_ms = wait_ms;
    sr_contended = contended;
    sr_sections = sections;
  }

(* The closed-loop memcached clients of the batch experiment, on a striped
   store: with [lock_stripes] > 1 each stripe's mutex is its own channel,
   so this is the workload where per-object channels have the most
   independent objects to spread over. *)
let run_scaling_memcached ~det_shard ~workers ~iters ~clients =
  let eng = new_engine () in
  let link = gbit_link eng in
  let params =
    {
      Memcached.default_params with
      Memcached.worker_threads = workers;
      lock_stripes = 8;
    }
  in
  let cluster =
    Cluster.create eng
      ~config:(scaling_config ~det_shard ())
      ~link:(Link.endpoint_a link)
      ~app:(fun api -> Memcached.server ~params api)
      ()
  in
  let host = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let ops = ref 0 and finished = ref 0 in
  let value = String.make 64 'v' in
  for cl = 0 to clients - 1 do
    ignore
      (Host.spawn host
         (Printf.sprintf "mc-client-%d" cl)
         (fun () ->
           let c = Tcp.connect (Host.stack host) ~host:"10.0.0.1" ~port:11211 in
           let buf = Buffer.create 256 in
           let read_exactly n =
             while Buffer.length buf < n do
               match Tcp.recv c ~max:4096 with
               | [] -> raise Tcp.Connection_closed
               | cs -> Buffer.add_string buf (Payload.concat_to_string cs)
             done;
             Buffer.clear buf
           in
           (try
              for i = 1 to iters do
                let key = Printf.sprintf "k%d-%d" cl (i mod 32) in
                Tcp.send c
                  (Payload.of_string
                     (Printf.sprintf "set %s %d\r\n%s" key
                        (String.length value) value));
                read_exactly 8 (* STORED\r\n *);
                incr ops;
                Tcp.send c (Payload.of_string (Printf.sprintf "get %s\r\n" key));
                read_exactly (10 + String.length value);
                incr ops
              done;
              Tcp.send c (Payload.of_string "quit\r\n")
            with Tcp.Connection_closed -> ());
           incr finished))
  done;
  drive eng ~cap:(Time.sec 120) ~stop:(fun () -> !finished = clients);
  let dur = Time.to_sec_f (Engine.now eng) in
  Cluster.shutdown cluster;
  let wait_ms, contended, sections = det_overhead eng in
  {
    sr_ops_per_s = (if dur > 0. then float_of_int !ops /. dur else 0.);
    sr_lock_wait_ms = wait_ms;
    sr_contended = contended;
    sr_sections = sections;
  }

let scaling quick =
  hr "Scaling: det-section sharding off vs on (per-object channels)";
  (* Summary engine first: its gauges are element 0 of BENCH_scaling.json,
     the slot the regression comparator reads. *)
  let summary = new_engine () in
  let reg = Engine.metrics summary in
  let worker_counts = if quick then [ 8; 16 ] else [ 8; 16; 32 ] in
  let pb_file_mb = if quick then 16 else 64 in
  let hog_slices = if quick then 100 else 400 in
  let mc_iters = if quick then 100 else 400 in
  let workloads =
    [
      ( "pbzip2",
        fun ~det_shard w ->
          run_scaling_pbzip2 ~det_shard ~workers:w ~file_mb:pb_file_mb () );
      ( "cpuhog",
        fun ~det_shard w ->
          run_scaling_cpuhog ~det_shard ~threads:w ~slices:hog_slices );
      ( "memcached",
        fun ~det_shard w ->
          (* Closed-loop clients: concurrency must scale with the server's
             workers or the offered load never reaches the backpressure
             knee. *)
          run_scaling_memcached ~det_shard ~workers:w ~iters:mc_iters
            ~clients:(2 * w) );
    ]
  in
  Printf.printf "%-12s %8s %-5s %12s %14s %10s %10s\n" "workload" "workers"
    "shard" "ops/s" "lock-wait(ms)" "contended" "sections";
  List.iter
    (fun (name, run) ->
      List.iter
        (fun w ->
          let off = run ~det_shard:false w in
          let on = run ~det_shard:true w in
          let row mode r =
            Printf.printf "%-12s %8d %-5s %12.0f %14.2f %10d %10d\n" name w
              mode r.sr_ops_per_s r.sr_lock_wait_ms r.sr_contended
              r.sr_sections
          in
          row "off" off;
          row "on" on;
          let gain =
            if off.sr_ops_per_s > 0. then
              100. *. ((on.sr_ops_per_s /. off.sr_ops_per_s) -. 1.)
            else 0.
          in
          Printf.printf
            "%-12s %8s shard: %+.1f%% ops/s, lock wait %.2f -> %.2f ms\n" ""
            "" gain off.sr_lock_wait_ms on.sr_lock_wait_ms;
          let g key v = Metrics.Gauge.set (Metrics.Registry.gauge reg key) v in
          List.iter
            (fun (mode, r) ->
              g
                (Printf.sprintf "scaling.%s.w%d.%s.ops_per_sec" name w mode)
                r.sr_ops_per_s;
              g
                (Printf.sprintf "scaling.%s.w%d.%s.lock_wait_ms" name w mode)
                r.sr_lock_wait_ms;
              g
                (Printf.sprintf "scaling.%s.w%d.%s.contended" name w mode)
                (float_of_int r.sr_contended))
            [ ("off", off); ("on", on) ];
          g (Printf.sprintf "scaling.%s.w%d.shard_gain_pct" name w) gain)
        worker_counts)
    workloads;
  Printf.printf
    "(acceptance: at 16+ workers the lock-heavy workloads' det lock wait must\n\
    \ be lower sharded and no workload may regress >10%%; the CI bench-regress\n\
    \ gate diffs the scaling.*.ops_per_sec gauges against bench/baseline/)\n"

(* ------------------------------------------------------------------ *)
(* Replay: serial drain vs parallel replay executors                   *)
(* ------------------------------------------------------------------ *)

(* The backup's serial replay drain is the system-wide ceiling PR 5 left
   behind (ROADMAP open item 1): pbzip2's sharded sections stream faster
   than one replay process can consume, so the 256-slot ring backpressures
   the primary and ops/s flatlines from 16 workers up.  This sweep holds
   the workload fixed and varies only the executor-pool size, so the rw1
   column IS the serial baseline the rw4+ columns must beat. *)
let replay quick =
  hr "Replay: serial drain vs parallel replay executors (pbzip2, shard on)";
  (* Summary engine first: its gauges are element 0 of BENCH_replay.json,
     the slot the regression comparator reads. *)
  let summary = new_engine () in
  let reg = Engine.metrics summary in
  let worker_counts = if quick then [ 8; 16 ] else [ 8; 16; 32 ] in
  let rw_counts = [ 1; 4 ] in
  let pb_file_mb = if quick then 16 else 64 in
  Printf.printf "%-8s %14s %12s %14s %10s\n" "workers" "replay-workers"
    "ops/s" "lock-wait(ms)" "sections";
  List.iter
    (fun w ->
      let results =
        List.map
          (fun rw ->
            ( rw,
              run_scaling_pbzip2 ~replay_workers:rw ~det_shard:true ~workers:w
                ~file_mb:pb_file_mb () ))
          rw_counts
      in
      List.iter
        (fun (rw, r) ->
          Printf.printf "%-8d %14d %12.0f %14.2f %10d\n" w rw r.sr_ops_per_s
            r.sr_lock_wait_ms r.sr_sections;
          let g key v = Metrics.Gauge.set (Metrics.Registry.gauge reg key) v in
          g
            (Printf.sprintf "replay.pbzip2.w%d.rw%d.ops_per_sec" w rw)
            r.sr_ops_per_s)
        results;
      match (List.assoc_opt 1 results, List.rev results) with
      | Some serial, (rw_max, par) :: _ when rw_max > 1 ->
          let gain =
            if serial.sr_ops_per_s > 0. then
              100. *. ((par.sr_ops_per_s /. serial.sr_ops_per_s) -. 1.)
            else 0.
          in
          Printf.printf "%-8s %14s parallel: %+.1f%% ops/s vs serial drain\n"
            "" "" gain;
          Metrics.Gauge.set
            (Metrics.Registry.gauge reg
               (Printf.sprintf "replay.pbzip2.w%d.parallel_gain_pct" w))
            gain
      | _ -> ())
    worker_counts;
  Printf.printf
    "(acceptance: pbzip2 ops/s with 4 replay executors strictly above the\n\
    \ serial drain at 16 and 32 workers; the CI bench-regress gate diffs\n\
    \ the replay.*.ops_per_sec gauges against bench/baseline/)\n"

(* ------------------------------------------------------------------ *)
(* Latency: percentiles through replica death (the telemetry tier)     *)
(* ------------------------------------------------------------------ *)

(* The headline production metric: per-request latency percentiles split
   into pre-fault / failover-window / post-recovery phases, with the window
   bounds taken from the pinned failover.* trace spans.  The phase
   percentiles land in latency.* gauges whose *_ms suffixes the regression
   gate treats as lower-is-better, so a tail-latency regression through
   failover fails CI like a throughput regression would. *)
let latency quick =
  hr "Latency: p50/p99/p999 through replica death (mongoose, closed loop)";
  (* Summary engine first: its gauges are element 0 of BENCH_latency.json,
     the slot the regression comparator reads. *)
  let summary = new_engine () in
  let reg = Engine.metrics summary in
  let g key v = Metrics.Gauge.set (Metrics.Registry.gauge reg key) v in
  let concurrency = if quick then 8 else 16 in
  let run_for = Time.ms (if quick then 1800 else 2400) in
  let eng = new_engine () in
  let r = Slo.run eng ~concurrency ~fail_at:(Time.ms 600) ~run_for () in
  Slo.print_table r;
  (match r.Slo.window with
  | Some (lo, hi) ->
      g "latency.failover.window_ms" (Time.to_ms_f (hi - lo));
      g "latency.failover.bounds_verified"
        (if r.Slo.span_bounds_ok then 1.0 else 0.0)
  | None -> ());
  let phase name h =
    g (Printf.sprintf "latency.%s.count" name)
      (float_of_int (Metrics.Hist.count h));
    if Metrics.Hist.count h > 0 then begin
      g (Printf.sprintf "latency.%s.p50_ms" name) (Metrics.Hist.quantile h 0.5);
      g (Printf.sprintf "latency.%s.p90_ms" name) (Metrics.Hist.quantile h 0.9);
      g (Printf.sprintf "latency.%s.p99_ms" name) (Metrics.Hist.quantile h 0.99);
      g
        (Printf.sprintf "latency.%s.p999_ms" name)
        (Metrics.Hist.quantile h 0.999)
    end
  in
  phase "pre" r.Slo.pre;
  phase "fo" r.Slo.fo;
  phase "post" r.Slo.post;
  g "latency.completed.ops_per_sec"
    (float_of_int r.Slo.completed /. Time.to_sec_f run_for);
  g "latency.errors" (float_of_int r.Slo.errors);
  Printf.printf
    "(acceptance: the failover window equals the pinned failover.* span\n\
    \ bounds; the CI bench-regress gate diffs latency.*.p{50,90,99,999}_ms\n\
    \ [lower is better] and latency.completed.ops_per_sec against\n\
    \ bench/baseline/BENCH_latency.json)\n"

(* ------------------------------------------------------------------ *)
(* Re-protection: online backup regeneration under load                *)
(* ------------------------------------------------------------------ *)

(* The lifecycle experiment: kill the primary under closed-loop load with
   re-protection on, and measure (a) time from the kill to the epoch switch
   that restores Protected, and (b) the throughput dip while the snapshot
   transfer runs — the promoted primary keeps serving while it journals the
   record stream and the fresh backup replays.  A Memlayout with a large
   User class stretches the copy window so the transfer phase is long
   enough to hold a measurable request count. *)
let reprotect quick =
  hr "Re-protection: online backup regeneration under load (mongoose)";
  (* Summary engine first: its gauges are element 0 of BENCH_reprotect.json,
     the slot the regression comparator reads. *)
  let summary = new_engine () in
  let reg = Engine.metrics summary in
  let g key v = Metrics.Gauge.set (Metrics.Registry.gauge reg key) v in
  let eng = new_engine () in
  let link = gbit_link eng in
  let user_mb = if quick then 384 else 768 in
  let concurrency = if quick then 8 else 16 in
  let layout = Memlayout.create ~ram_bytes:(4 * 1024 * mib 1) in
  Memlayout.alloc_user layout (user_mb * mib 1);
  let config =
    {
      Cluster.default_config with
      Cluster.topology = Topology.small;
      hb_period = Time.ms 5;
      hb_timeout = Time.ms 25;
      driver_load_time = Time.ms 200;
      lagmon = Some { Lagmon.default_config with Lagmon.quiet = true };
      reprotect = true;
      regen_delay = Time.ms 50;
      regen_layout = Some layout;
    }
  in
  let app api =
    Mongoose.run
      ~params:
        {
          Mongoose.default_params with
          Mongoose.page_bytes = 10 * 1024;
          cpu_per_request = Time.us 200;
        }
      api
  in
  let cluster =
    Cluster.create eng ~config ~link:(Link.endpoint_a link) ~app ()
  in
  let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
  let ab =
    Loadgen.ab_start client ~server:"10.0.0.1" ~port:80 ~target:"/"
      ~concurrency ()
  in
  let st = Loadgen.ab_stats ab in
  let completed () = Metrics.Counter.value st.Loadgen.completed in
  (* Phase boundaries come from the lifecycle API: the transfer window is
     [Regenerating .. Protected], sampled exactly at the transitions. *)
  let t_regen = ref None and c_regen = ref 0 in
  let t_prot = ref None and c_prot = ref 0 in
  Cluster.on_transition cluster (fun tr ->
      match tr.Cluster.tr_to with
      | Cluster.Regenerating ->
          if !t_regen = None then begin
            t_regen := Some tr.Cluster.tr_at;
            c_regen := completed ()
          end
      | Cluster.Protected when tr.Cluster.tr_from = Cluster.Regenerating ->
          if !t_prot = None then begin
            t_prot := Some tr.Cluster.tr_at;
            c_prot := completed ()
          end
      | _ -> ());
  let warmup = Time.ms 300 and kill_at = Time.ms 800 in
  Cluster.kill cluster ~role:Replica_set.Primary ~at:kill_at;
  Engine.run ~until:warmup eng;
  let c0 = completed () in
  Engine.run ~until:kill_at eng;
  let c1 = completed () in
  drive eng ~cap:(Time.sec 6) ~stop:(fun () -> !t_prot <> None);
  let post_from = Engine.now eng in
  let c2 = completed () in
  Engine.run ~until:(post_from + Time.ms 500) eng;
  let c3 = completed () in
  Loadgen.ab_stop ab;
  Cluster.shutdown cluster;
  let rate c c' w = float_of_int (c' - c) /. Time.to_sec_f w in
  let pre = rate c0 c1 (kill_at - warmup) in
  let post = rate c2 c3 (Time.ms 500) in
  (match (!t_regen, !t_prot) with
  | Some tr, Some tp when tp > tr ->
      let transfer = tp - tr in
      let regen = rate !c_regen !c_prot transfer in
      let dip = if pre > 0. then 100. *. (1. -. (regen /. pre)) else 0. in
      let ttp = tp - kill_at in
      Printf.printf "%-22s %12s %14s\n" "phase" "window(ms)" "ops/s";
      Printf.printf "%-22s %12.1f %14.0f\n" "pre-fault (protected)"
        (Time.to_ms_f (kill_at - warmup))
        pre;
      Printf.printf "%-22s %12.1f %14.0f\n" "regenerating (transfer)"
        (Time.to_ms_f transfer) regen;
      Printf.printf "%-22s %12.1f %14.0f\n" "post-switch (protected)"
        (Time.to_ms_f (Time.ms 500))
        post;
      Printf.printf
        "time to re-protected: %s after the kill (epoch %d, lifecycle %s)\n"
        (Time.to_string ttp) (Cluster.epoch cluster)
        (Replica_set.lifecycle_label (Cluster.state cluster));
      Printf.printf
        "throughput dip during transfer: %.1f%% (%d MiB user copy%s)\n" dip
        user_mb
        (if dip < 0. then
           "; negative: the survivor serves unprotected — no output-commit \
            wait — until the switch"
         else "");
      g "reprotect.time_to_protected.window_ms" (Time.to_ms_f ttp);
      g "reprotect.transfer.window_ms" (Time.to_ms_f transfer);
      g "reprotect.pre.ops_per_sec" pre;
      g "reprotect.regen.ops_per_sec" regen;
      g "reprotect.post.ops_per_sec" post;
      g "reprotect.dip_pct" dip;
      g "reprotect.epoch" (float_of_int (Cluster.epoch cluster))
  | _ -> Printf.printf "re-protection did not complete within the cap\n");
  Printf.printf
    "(acceptance: the dip during the snapshot transfer stays under 20%%; the\n\
    \ CI bench-regress gate diffs reprotect.*.ops_per_sec and the\n\
    \ time-to-protected / transfer windows against\n\
    \ bench/baseline/BENCH_reprotect.json)\n"

(* ------------------------------------------------------------------ *)
(* C10K: open-loop arrivals through replica death                      *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: the C10K serving tier.  A replicated Mongoose with a
   4-shard listener group, bounded per-shard backlogs and admission control
   takes an open-loop arrival sweep through a primary kill; per-request
   latency is phase-split on the pinned failover.* spans exactly as in the
   latency experiment.  Each tier launches 10% more arrivals than its
   nominal concurrency target so the connections completed before the
   arrival window closes don't drag the high-water mark below the target.
   Every gauge derives from simulated time and deterministic counters, so
   two same-seed runs produce byte-identical BENCH_c10k.json. *)
let c10k quick =
  hr "C10K: open-loop arrivals through replica death (sharded listeners)";
  (* Summary engine first: its gauges are element 0 of BENCH_c10k.json,
     the slot the regression comparator reads. *)
  let summary = new_engine () in
  let reg = Engine.metrics summary in
  let g key v = Metrics.Gauge.set (Metrics.Registry.gauge reg key) v in
  let tiers = if quick then [ 1_000; 2_500 ] else [ 1_000; 5_000; 10_000 ] in
  let kill_at = Time.ms 600 in
  let run_tier target =
    let conns = target + (target / 10) in
    let rate = 2.0 *. float_of_int target in
    let eng = new_engine () in
    let link = gbit_link eng in
    let params =
      {
        Mongoose.default_params with
        Mongoose.workers = 32;
        page_bytes = 10 * 1024;
        (* Accepts cheap, service expensive: the worker pool (not the accept
           path) is the bottleneck, so overload piles into the admission
           window and the controller actually sheds.  Service capacity is
           roughly cores/cpu_per_request ~ 4k req/s, far below the offered
           10-20k/s, which also keeps >= the nominal connection count open
           concurrently through the kill. *)
        cpu_per_request = Time.ms 1;
        accept_cost = Time.us 250;
        queue_capacity = 512;
        listen_shards = 4;
        accept_backlog = Some 512;
        overflow = `Drop;
        (* Below the natural in-flight concurrency the contended CPU
           sustains (the FIFO quantum scheduler keeps roughly 24-48 workers
           inside the admit..release window under flood), so the controller
           demonstrably sheds at the overloaded tiers. *)
        admission = Some 16;
      }
    in
    let app api = Mongoose.run ~params api in
    (* Fast-failover timings from the SLO config, but on the full paper
       testbed topology: C10K-scale concurrency needs the 64-core machine —
       on [Topology.small] the workers' computes starve packet processing
       through the FIFO quantum scheduler and the admission window never
       fills. *)
    let config =
      { Slo.default_config with Cluster.topology = Topology.opteron_testbed }
    in
    let cluster =
      Cluster.create eng ~config ~link:(Link.endpoint_a link) ~app ()
    in
    Cluster.kill cluster ~role:Replica_set.Primary ~at:kill_at;
    let client = Host.create eng ~ip:"10.0.0.9" (Link.endpoint_b link) in
    (* Let the server boot and listen before arrivals begin. *)
    Engine.run ~until:(Time.ms 200) eng;
    let completions = ref [] in
    let ol =
      Loadgen.ol_start client ~server:"10.0.0.1" ~port:80 ~target:"/"
        ~rate ~conns ~poisson:true ~seed:7
        ~on_complete:(fun ~at ~latency ->
          completions := (at, latency) :: !completions)
        ()
    in
    drive eng ~cap:(Time.sec 90) ~stop:(fun () ->
        Ivar.is_filled (Loadgen.ol_done ol));
    Cluster.shutdown cluster;
    Engine.run ~until:(Engine.now eng + Time.ms 100) eng;
    let st = Loadgen.ol_stats ol in
    let evs = Evlog.events (Engine.evlog eng) in
    let window =
      match
        ( Evlog.Query.span_of ~comp:"ft.cluster" ~name:"failover.detect" evs,
          Evlog.Query.span_of ~comp:"ft.cluster" ~name:"failover.golive" evs )
      with
      | Some (d0, _), Some (_, g1) -> Some (d0, g1)
      | _ -> None
    in
    let pre = Metrics.Hist.create ()
    and fo = Metrics.Hist.create ()
    and post = Metrics.Hist.create () in
    List.iter
      (fun (at, dt) ->
        let h =
          match window with
          | None -> pre
          | Some (lo, hi) -> if at < lo then pre else if at > hi then post else fo
        in
        Metrics.Hist.record h (Time.to_ms_f dt))
      !completions;
    let ovf =
      let c name =
        Metrics.Counter.value
          (Metrics.Registry.counter (Engine.metrics eng)
             (Printf.sprintf "tcp.10.0.0.1.%s" name))
      in
      c "accept_overflow_drop" + c "accept_overflow_rst"
    in
    let ok = Metrics.Counter.value st.Loadgen.ol_ok
    and shed = Metrics.Counter.value st.Loadgen.ol_shed
    and errors = Metrics.Counter.value st.Loadgen.ol_errors in
    let shed_rate = float_of_int shed /. float_of_int conns in
    let p999 h =
      if Metrics.Hist.count h > 0 then Metrics.Hist.quantile h 0.999 else 0.0
    in
    Printf.printf
      "%-8d %8d %8d %8d %8d %8d %10.3f %10.3f %10.3f %8d\n"
      target conns (Loadgen.ol_peak ol) ok shed errors (p999 pre) (p999 fo)
      (p999 post) ovf;
    let gt key v = g (Printf.sprintf "c10k.c%d.%s" target key) v in
    gt "peak_conns" (float_of_int (Loadgen.ol_peak ol));
    gt "ok" (float_of_int ok);
    gt "shed_rate" shed_rate;
    gt "accept_overflow" (float_of_int ovf);
    gt "pre.p999_ms" (p999 pre);
    gt "fo.p999_ms" (p999 fo);
    gt "post.p999_ms" (p999 post);
    (target, Loadgen.ol_peak ol, shed_rate, ovf, p999 pre, p999 fo, p999 post)
  in
  Printf.printf
    "%-8s %8s %8s %8s %8s %8s %10s %10s %10s %8s\n" "target" "conns" "peak"
    "ok" "shed" "errors" "pre-p999" "fo-p999" "post-p999" "ovf";
  let results = List.map run_tier tiers in
  (* Canonical headline keys come from the largest tier. *)
  (match List.rev results with
  | (target, peak, shed_rate, ovf, p_pre, p_fo, p_post) :: _ ->
      g "c10k.target_conns" (float_of_int target);
      g "c10k.peak_conns" (float_of_int peak);
      g "c10k.shed_rate" shed_rate;
      g "c10k.accept_overflow" (float_of_int ovf);
      g "c10k.pre.p999_ms" p_pre;
      g "c10k.fo.p999_ms" p_fo;
      g "c10k.post.p999_ms" p_post
  | [] -> ());
  Printf.printf
    "(acceptance: the top tier holds >= its nominal connection count \n\
    \ concurrently open through the kill with a finite p999 in every phase;\n\
    \ the CI bench-regress gate diffs c10k.*.p999_ms, c10k.*.shed_rate and\n\
    \ c10k.*.accept_overflow [all lower-better] against\n\
    \ bench/baseline/BENCH_c10k.json)\n"

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1, "Figure 1: memory classification under memcached");
    ("sec23", sec23, "Section 2.3: random memory-error outcomes");
    ("fig4", fig4_5, "Figures 4+5: PBZIP2 throughput and traffic vs block size");
    ("fig5", fig4_5, "alias of fig4 (shared runs)");
    ("fig6", fig6_7, "Figures 6+7: Mongoose throughput and traffic vs CPU load");
    ("fig7", fig6_7, "alias of fig6 (shared runs)");
    ("sec43", sec43, "Section 4.3: mixing replicated and non-replicated apps");
    ("fig8", fig8, "Figure 8: 1 Gb/s transfer with failover");
    ("micro", micro, "Bechamel microbenchmarks of simulator primitives");
    ("ablation", ablations, "Ablations: proximity, output commit, wake latency");
    ("chaos", chaos, "Chaos campaigns: random fault schedules + divergence checks");
    ("chaosparallel", chaosparallel, "Campaign seeds/sec vs worker domains (deterministic merge)");
    ("batch", batch, "Batched sync-tuple streaming: traffic with batching off vs on");
    ("scaling", scaling, "Det-section sharding off vs on: overhead vs worker count");
    ("replay", replay, "Backup replay: serial drain vs parallel replay executors");
    ("latency", latency, "Latency percentiles through replica death (phase-split SLO)");
    ("reprotect", reprotect, "Re-protection: regeneration time and transfer-phase throughput dip");
    ("c10k", c10k, "C10K: open-loop arrivals through replica death (sharded listeners + admission)");
  ]

let run_all quick =
  run_experiment "fig1" fig1 quick;
  run_experiment "sec23" sec23 quick;
  run_experiment "fig4" fig4_5 quick;
  run_experiment "fig6" fig6_7 quick;
  run_experiment "sec43" sec43 quick;
  run_experiment "fig8" fig8 quick;
  run_experiment "ablation" ablations quick;
  run_experiment "chaos" chaos quick;
  run_experiment "chaosparallel" chaosparallel quick;
  run_experiment "batch" batch quick;
  run_experiment "scaling" scaling quick;
  run_experiment "replay" replay quick;
  run_experiment "latency" latency quick;
  run_experiment "reprotect" reprotect quick;
  run_experiment "c10k" c10k quick;
  run_experiment "micro" micro quick

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  (* Strip flags (and --trace-out's value) before dispatching on the
     experiment name. *)
  let int_flag flag v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ ->
        Printf.eprintf "bench: %s requires a non-negative integer, got %S\n"
          flag v;
        exit 1
  in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest -> strip rest
    | "--trace-out" :: path :: rest ->
        trace_out := Some path;
        strip rest
    | [ "--trace-out" ] ->
        Printf.eprintf "bench: --trace-out requires a PATH argument\n";
        exit 1
    | "--batch-window" :: v :: rest ->
        batch_window_override := Some (Time.us (int_flag "--batch-window" v));
        strip rest
    | [ "--batch-window" ] ->
        Printf.eprintf "bench: --batch-window requires a USEC argument\n";
        exit 1
    | "--batch-bytes" :: v :: rest ->
        batch_bytes_override := Some (int_flag "--batch-bytes" v);
        strip rest
    | [ "--batch-bytes" ] ->
        Printf.eprintf "bench: --batch-bytes requires a BYTES argument\n";
        exit 1
    | "--replay-workers" :: v :: rest ->
        let n = int_flag "--replay-workers" v in
        if n < 1 then begin
          Printf.eprintf "bench: --replay-workers requires N >= 1\n";
          exit 1
        end;
        replay_workers_override := Some n;
        strip rest
    | [ "--replay-workers" ] ->
        Printf.eprintf "bench: --replay-workers requires an N argument\n";
        exit 1
    | "--jobs" :: v :: rest ->
        let n = int_flag "--jobs" v in
        if n < 1 then begin
          Printf.eprintf "bench: --jobs requires N >= 1\n";
          exit 1
        end;
        jobs_override := Some n;
        strip rest
    | [ "--jobs" ] ->
        Printf.eprintf "bench: --jobs requires an N argument\n";
        exit 1
    | a :: rest -> a :: strip rest
  in
  let args = strip (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [] | [ "all" ] ->
      Printf.printf "FT-Linux reproduction: full evaluation%s\n"
        (if quick then " (quick mode)" else "");
      run_all quick
  | [ name ] -> (
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, f, _) -> run_experiment name f quick
      | None ->
          Printf.eprintf "unknown experiment %S; available:\n" name;
          List.iter
            (fun (n, _, d) -> Printf.eprintf "  %-8s %s\n" n d)
            experiments;
          exit 1)
  | _ ->
      Printf.eprintf
        "usage: bench [EXPERIMENT] [--quick] [--trace-out PATH] \
         [--batch-window USEC] [--batch-bytes BYTES] [--replay-workers N] \
         [--jobs N]\n";
      exit 1
