(* bench-regression gate: compare a fresh BENCH_*.json against the
   committed baseline and fail (exit 1) on >10 % drift in any gated
   metric.

     regress BASELINE.json CURRENT.json

   The dumps are JSON arrays of per-engine metric registries (see
   bench/main.ml: dump_bench).  Numeric leaves are flattened to
   "<engine-index>.<metric-name>" keys.  Only metrics under a "batch."
   prefix are gated — those are the per-operation gauges the batch
   experiment publishes precisely for this comparison; raw counters
   elsewhere in the dump move for benign reasons (extra instrumentation,
   workload tweaks) and stay informational.  Direction comes from the
   key's suffix:

     *.msgs_per_op, *.bytes_per_op    lower is better
     *.p50_ms, *.p90_ms, *.p99_ms,
     *.p999_ms, *.window_ms           lower is better (latency percentiles
                                      and failover-window length regress
                                      upward)
     *.ops_per_sec                    higher is better
     *_reduction_pct                  higher is better

   A gated key present in the baseline but missing from the current dump
   is a failure (a regression can't hide by deleting its metric). *)

let threshold = 0.10

(* Wall-clock metrics (the chaosparallel campaign-throughput sweep is the
   only family) are real host time, not simulated time: they move with the
   runner's core count and load, so their gate only catches gross
   regressions — a broken domain pool, not scheduler jitter. *)
let wall_threshold = 0.50

(* {1 A minimal JSON reader}

   Covers exactly what the bench dumps contain: objects, arrays, numbers,
   strings, null/true/false.  No dependencies, so the gate can run in CI
   from a bare dune build. *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Parse of string

type cur = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> raise (Parse (Printf.sprintf "expected %c at byte %d" ch c.pos))

let parse_lit c lit v =
  if
    c.pos + String.length lit <= String.length c.s
    && String.sub c.s c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    v
  end
  else raise (Parse (Printf.sprintf "bad literal at byte %d" c.pos))

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then raise (Parse "unterminated string");
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    if ch = '"' then Buffer.contents b
    else if ch = '\\' then begin
      (if c.pos >= String.length c.s then raise (Parse "unterminated escape");
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'u' ->
           (* The dumps only escape control characters; a lossy readback
              is fine for key names. *)
           if c.pos + 4 > String.length c.s then raise (Parse "bad \\u");
           c.pos <- c.pos + 4;
           Buffer.add_char b '?'
       | _ -> raise (Parse "unknown escape"));
      go ()
    end
    else begin
      Buffer.add_char b ch;
      go ()
    end
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.pos - start)) with
  | Some f -> J_num f
  | None -> raise (Parse (Printf.sprintf "bad number at byte %d" start))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              J_obj (List.rev ((k, v) :: acc))
          | _ -> raise (Parse "expected , or } in object")
        in
        members []
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        J_arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              J_arr (List.rev (v :: acc))
          | _ -> raise (Parse "expected , or ] in array")
        in
        elems []
      end
  | Some '"' -> J_str (parse_string c)
  | Some 'n' -> parse_lit c "null" J_null
  | Some 't' -> parse_lit c "true" (J_bool true)
  | Some 'f' -> parse_lit c "false" (J_bool false)
  | Some _ -> parse_number c
  | None -> raise (Parse "unexpected end of input")

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then raise (Parse "trailing bytes");
  v

(* {1 Flatten and compare} *)

let flatten root =
  let out = ref [] in
  let rec go prefix = function
    | J_num f -> out := (prefix, f) :: !out
    | J_obj kvs ->
        List.iter (fun (k, v) -> go (if prefix = "" then k else prefix ^ "." ^ k) v) kvs
    | J_arr vs ->
        List.iteri (fun i v -> go (if prefix = "" then string_of_int i else prefix ^ "." ^ string_of_int i) v) vs
    | J_null | J_bool _ | J_str _ -> ()
  in
  go "" root;
  List.rev !out

let ends_with suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Each gated suffix carries its direction and its tolerance; keys without
   a recognized suffix stay informational. *)
let direction key =
  if
    ends_with ".msgs_per_op" key || ends_with ".bytes_per_op" key
    || ends_with ".p50_ms" key || ends_with ".p90_ms" key
    || ends_with ".p99_ms" key || ends_with ".p999_ms" key
    || ends_with ".window_ms" key
    || ends_with ".shed_rate" key
    || ends_with ".accept_overflow" key
  then Some (`Lower_better, threshold)
  else if ends_with ".ops_per_sec" key || ends_with "_reduction_pct" key then
    Some (`Higher_better, threshold)
  else if ends_with ".seeds_per_sec" key || ends_with ".speedup_x" key then
    Some (`Higher_better, wall_threshold)
  else if ends_with ".report_identical" key then
    (* Boolean determinism gauges: exact match, no drift allowance. *)
    Some (`Exact, 0.0)
  else None

(* Every key of every committed baseline is gated: any metric family that
   lands in bench/baseline/BENCH_*.json participates automatically.  The
   direction suffix decides whether a key is actually compared — keys
   without a recognized suffix (raw counters, timings the simulator does
   not hold deterministic across refactors) stay informational. *)
let gated _key = true

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
        prerr_endline "usage: regress BASELINE.json CURRENT.json";
        exit 2
  in
  let load path =
    try flatten (parse_file path) with
    | Sys_error msg ->
        Printf.eprintf "regress: %s\n" msg;
        exit 2
    | Parse msg ->
        Printf.eprintf "regress: %s: %s\n" path msg;
        exit 2
  in
  let base = load baseline_path and cur = load current_path in
  let failures = ref 0 and compared = ref 0 in
  Printf.printf "%-52s %12s %12s %8s  %s\n" "metric" "baseline" "current"
    "delta%" "verdict";
  List.iter
    (fun (key, bv) ->
      if gated key then
        match direction key with
        | None -> ()
        | Some (dir, tol) -> (
            incr compared;
            match List.assoc_opt key cur with
            | None ->
                incr failures;
                Printf.printf "%-52s %12.3f %12s %8s  FAIL (missing)\n" key bv
                  "-" "-"
            | Some cv ->
                let delta =
                  if bv <> 0.0 then 100.0 *. ((cv /. bv) -. 1.0) else 0.0
                in
                let ok =
                  match dir with
                  | `Exact -> cv = bv
                  | `Lower_better -> bv = 0.0 || cv <= bv *. (1.0 +. tol)
                  | `Higher_better -> bv = 0.0 || cv >= bv *. (1.0 -. tol)
                in
                if not ok then incr failures;
                Printf.printf "%-52s %12.3f %12.3f %+8.1f  %s\n" key bv cv
                  delta
                  (if ok then "ok" else "FAIL")))
    base;
  if !compared = 0 then begin
    (* An empty comparison is itself a gate failure: the baseline no longer
       matches what the bench emits. *)
    Printf.printf "no gated metrics found in %s\n" baseline_path;
    exit 1
  end;
  Printf.printf "%d metrics compared, %d failed (threshold %.0f%%)\n" !compared
    !failures (100.0 *. threshold);
  if !failures > 0 then exit 1
